"""Asynchronous ingest: a bounded pending queue + background flusher.

Synchronous :meth:`~repro.serving.EmbeddingService.ingest` makes an
unlucky producer pay for the whole fused flush its chunk happens to
trigger — tens of milliseconds on a call that usually costs
microseconds.  :class:`AsyncIngestPipeline` decouples the two halves:
:meth:`~AsyncIngestPipeline.submit` enqueues chunks into a bounded
pending queue (``max_pending_events`` backpressure — block until the
flusher catches up, or reject immediately with a typed
:class:`BackpressureError`), and one background flusher thread applies
them to the service in submission order.

**Equivalence.** A single consumer draining a FIFO replays *exactly*
the ``batcher.add`` / threshold-flush call sequence the synchronous
path would have run, so after :meth:`~AsyncIngestPipeline.drain` the
service state — and every embedding — is bit-identical to having called
``service.ingest`` inline, for any precision, backend or codec
(asserted in ``tests/serving/test_async_pipeline.py``).  Concurrent
queries keep the service's never-stale contract over *applied and
buffered* events; a chunk still sitting in the pipeline queue is not
visible yet — ``drain()`` is the read-your-writes barrier.  Queries
that force partial flushes of buffered entities regroup the fused
batches, which keeps results within the runtime's precision drift
bounds (float32 ~1e-5, float64 ~1e-10) instead of bit-identical — the
same caveat the synchronous service has.

**Threading.** Plain ``threading.Thread``, no ``asyncio``: the heavy
work (fused kernels through BLAS) releases the GIL, the service's lock
serialises all state mutation, and no shared state is ever mutated from
thread-pool workers — reprolint's RP004 thread-purity contract holds
with zero suppressions.
"""

from __future__ import annotations

import threading
from collections import deque

from ..data.sequences import EventSequence

__all__ = ["AsyncIngestPipeline", "BackpressureError"]


class BackpressureError(RuntimeError):
    """``submit`` rejected a chunk: the pending queue is full.

    Raised only under ``on_full="reject"``.  Carries the queue state at
    rejection time so callers can implement retry/shed policies.
    """

    def __init__(self, message, pending_events, max_pending_events):
        super().__init__(message)
        self.pending_events = int(pending_events)
        self.max_pending_events = int(max_pending_events)


class AsyncIngestPipeline:
    """Bounded async ingest queue in front of an :class:`EmbeddingService`.

    Parameters
    ----------
    service:
        The :class:`~repro.serving.EmbeddingService` to feed.  The
        pipeline owns no state of its own beyond the queue — counters,
        cache, store and latency telemetry all live on the service, so
        ``service.stats()`` stays the single observability surface.
    max_pending_events:
        Backpressure bound: the maximum number of events (not chunks)
        queued but not yet applied.  A chunk larger than the whole bound
        is admitted alone once the queue is empty — otherwise it could
        never be accepted.
    on_full:
        ``"block"`` (default) makes ``submit`` wait until the flusher
        frees room; ``"reject"`` raises :class:`BackpressureError`
        immediately.

    ``submit`` latency (enqueue + any backpressure wait) is recorded as
    the service's ``ingest`` operation — the producer-visible ingest
    cost, directly comparable to synchronous ``service.ingest`` samples.
    Use as a context manager to guarantee :meth:`close`.
    """

    def __init__(self, service, max_pending_events=8192, on_full="block"):
        if max_pending_events < 1:
            raise ValueError("max_pending_events must be >= 1")
        if on_full not in ("block", "reject"):
            raise ValueError("on_full must be 'block' or 'reject' (got %r)"
                             % (on_full,))
        self.service = service
        self.max_pending_events = int(max_pending_events)
        self.on_full = on_full
        self._cond = threading.Condition()
        self._queue = deque()      # pending chunks, submission order
        self._pending_events = 0   # events queued + in the in-flight chunk
        self._inflight = 0         # events of the chunk being applied
        self._errors = deque()     # exceptions deferred to drain()/close()
        self._closed = False
        self.submitted_chunks = 0
        self.submitted_events = 0
        self.applied_chunks = 0
        self.rejected_chunks = 0
        self.blocked_submits = 0
        self.errors_seen = 0
        self._flusher = threading.Thread(target=self._drain_loop,
                                         name="repro-ingest-flusher",
                                         daemon=True)
        self._flusher.start()

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def submit(self, events):
        """Enqueue one chunk (or an iterable of chunks) for async ingest.

        Type and emptiness are validated here, synchronously — those are
        producer bugs and should raise at the call site.  The
        append-only time-order contract needs buffered state, so it is
        checked by the flusher when the chunk is applied; a violation is
        deferred and re-raised by :meth:`drain` (other chunks are still
        applied).  Returns the number of events accepted.
        """
        chunks = [events] if isinstance(events, EventSequence) else events
        accepted = 0
        for chunk in chunks:
            if not isinstance(chunk, EventSequence):
                raise TypeError("submit expects EventSequence chunks, got %s"
                                % type(chunk).__name__)
            if len(chunk) == 0:
                raise ValueError("cannot ingest an empty event chunk")
            with self.service.latency.time("ingest"):
                self._enqueue(chunk)
            accepted += len(chunk)
        return accepted

    def _enqueue(self, chunk):
        """Admit one validated chunk, honouring the backpressure policy."""
        size = len(chunk)
        with self._cond:
            if self._closed:
                raise RuntimeError("pipeline is closed")
            blocked = False
            # The `pending > 0` clause admits an oversize chunk alone
            # once the queue is empty — otherwise it could never fit and
            # block/reject would livelock the producer.
            while (self._pending_events + size > self.max_pending_events
                   and self._pending_events > 0):
                if self.on_full == "reject":
                    self.rejected_chunks += 1
                    raise BackpressureError(
                        "ingest queue full: %d events pending against "
                        "max_pending_events=%d"
                        % (self._pending_events, self.max_pending_events),
                        self._pending_events, self.max_pending_events,
                    )
                if not blocked:
                    blocked = True
                    self.blocked_submits += 1
                self._cond.wait()
                if self._closed:
                    raise RuntimeError("pipeline closed while submit was "
                                       "blocked on backpressure")
            self._queue.append(chunk)
            self._pending_events += size
            self.submitted_chunks += 1
            self.submitted_events += size
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # consumer side (the flusher thread)
    # ------------------------------------------------------------------
    def _drain_loop(self):
        """Apply queued chunks in FIFO order until closed and empty."""
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if not self._queue:
                    return  # closed, nothing left to apply
                chunk = self._queue.popleft()
                self._inflight = len(chunk)
            try:
                # The service's own lock serialises this against every
                # synchronous ingest/flush/query — the pipeline never
                # touches store, batcher or cache directly.
                self.service._apply_chunk(chunk)
                with self._cond:
                    self.applied_chunks += 1
            except Exception as error:  # deferred, surfaced at drain()
                with self._cond:
                    self._errors.append(error)
                    self.errors_seen += 1
            finally:
                with self._cond:
                    self._pending_events -= self._inflight
                    self._inflight = 0
                    self._cond.notify_all()

    # ------------------------------------------------------------------
    # barriers and lifecycle
    # ------------------------------------------------------------------
    @property
    def pending_events(self):
        """Events submitted but not yet applied (queued + in flight)."""
        with self._cond:
            return self._pending_events

    def drain(self):
        """Block until every submitted chunk is applied, then flush.

        The read-your-writes barrier: afterwards the service state is
        exactly the synchronous ingest of every submitted chunk and
        nothing is buffered.  Returns the entity ids the final flush
        refreshed.  The oldest exception the flusher deferred (e.g. an
        out-of-order chunk) is re-raised here — one per ``drain`` call;
        ``stats()["deferred_errors"]`` counts them all.
        """
        with self._cond:
            while self._queue or self._inflight:
                self._cond.wait()
            error = self._errors.popleft() if self._errors else None
        if error is not None:
            raise error
        return self.service.flush()

    def close(self, drain=True):
        """Stop the flusher thread; idempotent.

        ``drain=True`` (default) runs a full :meth:`drain` first —
        applying and flushing everything and re-raising deferred errors.
        ``drain=False`` skips the final flush and error check but still
        lets the flusher finish chunks already queued (nothing is
        discarded).  Afterwards ``submit`` raises.
        """
        if drain and self._flusher.is_alive():
            self.drain()
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        self._flusher.join()
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        # After an exception in the body, close without draining so the
        # original error is not masked by a deferred ingest error.
        self.close(drain=exc_type is None)

    # ------------------------------------------------------------------
    def stats(self):
        """Pipeline telemetry: knobs, queue depth and lifetime counters."""
        with self._cond:
            return {
                "max_pending_events": self.max_pending_events,
                "on_full": self.on_full,
                "queued_events": self._pending_events,
                "queued_chunks": (len(self._queue)
                                  + (1 if self._inflight else 0)),
                "submitted_chunks": self.submitted_chunks,
                "submitted_events": self.submitted_events,
                "applied_chunks": self.applied_chunks,
                "rejected_chunks": self.rejected_chunks,
                "blocked_submits": self.blocked_submits,
                "deferred_errors": self.errors_seen,
                "closed": self._closed,
            }
