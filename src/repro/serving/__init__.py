"""Online embedding serving: shards, micro-batches, cache, service.

PR 1's :mod:`repro.runtime` made single-process inference fast; this
package turns it into a *service* shaped like the paper's production ETL
(Section 4.3.1) at the ROADMAP's "millions of users" scale point:

- :class:`ShardedEmbeddingStore` — per-entity state hash-partitioned over
  independent :class:`~repro.runtime.EmbeddingStore` shards (per-shard
  state bundles, deterministic routing, pluggable
  :class:`~repro.runtime.StateBackend` storage and
  :class:`~repro.runtime.StateCodec` at-rest encoding), compute still
  globally batched;
- :class:`MicroBatcher` — buffers per-entity event chunks and drains them
  as length-bucketed fused batches via
  :func:`repro.runtime.advance_entities` instead of one kernel call per
  entity;
- :class:`EmbeddingCache` — LRU hot-embedding cache, invalidated the
  moment an entity's state advances;
- :class:`EmbeddingService` — the facade (``ingest`` / ``flush`` /
  ``query`` / ``save`` / ``load``) plus replayable event logs
  (:func:`build_event_log`, :func:`replay_event_log`) used by the
  deployment example and the equivalence tests;
- :class:`AsyncIngestPipeline` — a bounded pending queue + background
  flusher thread in front of the service (``max_pending_events``
  backpressure: block or reject with :class:`BackpressureError`); a
  drained pipeline is bit-identical to synchronous ingest;
- :class:`LatencyRecorder` — per-operation p50/p95/p99 latency
  telemetry, exposed as ``stats()["latency_ms"]`` and CI-gated at
  million-entity scale via ``BENCH_serving.json``.
"""

from .cache import EmbeddingCache
from .microbatch import MicroBatcher, coalesce_chunks
from .pipeline import AsyncIngestPipeline, BackpressureError
from .replay import build_event_log, replay_event_log
from .service import EmbeddingService
from .sharding import ShardedEmbeddingStore, route_entity
from .telemetry import LatencyRecorder

__all__ = [
    "EmbeddingCache",
    "MicroBatcher",
    "coalesce_chunks",
    "AsyncIngestPipeline",
    "BackpressureError",
    "LatencyRecorder",
    "build_event_log",
    "replay_event_log",
    "EmbeddingService",
    "ShardedEmbeddingStore",
    "route_entity",
]
