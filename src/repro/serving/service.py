"""The online embedding service: ingest -> flush -> query.

:class:`EmbeddingService` is the deployment-facing facade over the
serving stack:

- **ingest(events)** buffers per-entity event chunks in a
  :class:`~repro.serving.MicroBatcher`, auto-flushing once enough events
  accumulate;
- **flush()** drains the buffer through
  :func:`~repro.runtime.advance_entities` (length-bucketed fused
  batches over the sharded store's state) and invalidates the affected
  cache entries;
- **query(entity_ids)** serves embeddings through an LRU
  :class:`~repro.serving.EmbeddingCache`, flushing first whenever a
  requested entity has buffered events so a read is never stale;
- **save(dir)/load(dir)** persist the sharded state between workers
  (``snapshot``/``restore`` remain as deprecated aliases).

Where state lives is a construction knob: ``backend="memmap"`` (with
``backend_dir=...``) pages per-shard states from disk instead of RAM,
and ``codec="int8"``/``"uint4"``/``"float16"`` compresses them at rest —
see :mod:`repro.runtime.backends`.

The service is **thread-safe**: one reentrant lock serialises every
state mutation (buffer, store, cache, counters), which is what lets the
:class:`~repro.serving.AsyncIngestPipeline` apply chunks from its
background flusher thread while producers keep submitting and readers
keep querying.  Every operation records its wall-clock latency into a
:class:`~repro.serving.LatencyRecorder` (ops ``ingest`` / ``flush`` /
``query``), surfaced as the ``latency_ms`` subtree of :meth:`stats`.

Embeddings served this way match a cold
:meth:`~repro.runtime.FusedEncoderRuntime.embed_dataset` recompute of the
full history to < 1e-10 — asserted by ``tests/serving/``.
"""

from __future__ import annotations

import threading
import warnings

import numpy as np

from ..data.sequences import EventSequence
from ..runtime.store import advance_entities
from .cache import EmbeddingCache
from .microbatch import MicroBatcher
from .sharding import ShardedEmbeddingStore
from .telemetry import LatencyRecorder

__all__ = ["EmbeddingService"]


class EmbeddingService:
    """Sharded, micro-batched, cached online embedding serving.

    Parameters
    ----------
    encoder:
        A trained recurrent encoder (or a
        :class:`~repro.runtime.FusedEncoderRuntime`).
    schema:
        The :class:`~repro.data.EventSchema` incoming event chunks follow.
    num_shards:
        State partitions of the underlying
        :class:`~repro.serving.ShardedEmbeddingStore`.
    cache_capacity:
        Hot-embedding LRU size (0 disables caching).
    flush_events:
        Buffered-event threshold that triggers an automatic flush.
    batch_size:
        Rows per fused batch when flushing and bulk-loading.
    precision:
        Dtype policy of the underlying fused runtime (None: the runtime
        default, float32).
    workers:
        Bucket-parallel worker count for flushes and bulk loads (None:
        the runtime default, serial; any value is bit-identical).
    backend:
        Per-shard state storage forwarded to the sharded store:
        ``"dict"``/None (in-RAM, the default), ``"memmap"`` (out-of-core
        shards under ``backend_dir``), or a one-arg factory
        ``index -> StateBackend``.
    codec:
        At-rest :class:`~repro.runtime.StateCodec` (``"identity"``/None,
        ``"float16"``, ``"int8"``, ``"uint4"``); applies to shard files
        and state bundles, orthogonal to ``precision``.
    backend_dir:
        Root directory of the ``"memmap"`` backend's per-shard state.
    """

    def __init__(self, encoder, schema, num_shards=8, cache_capacity=1024,
                 flush_events=256, batch_size=64, precision=None,
                 workers=None, backend=None, codec=None, backend_dir=None):
        self.store = ShardedEmbeddingStore(encoder, num_shards=num_shards,
                                           precision=precision,
                                           workers=workers, backend=backend,
                                           codec=codec,
                                           backend_dir=backend_dir)
        self.schema = schema
        self.batch_size = int(batch_size)
        self.cache = EmbeddingCache(cache_capacity)
        self.batcher = MicroBatcher(flush_events=flush_events,
                                    time_field=schema.time_field,
                                    last_time_of=self.store.last_time)
        self.latency = LatencyRecorder()
        # One coarse reentrant lock serialises every state mutation
        # (batcher, store, cache, counters).  Correctness first: the
        # fused kernels release the GIL inside BLAS, so a background
        # flusher's compute still overlaps producers' python work.
        self._lock = threading.RLock()
        self.events_ingested = 0
        self.chunks_ingested = 0
        self.flushes = 0
        self.flush_batches = 0
        self.queries = 0

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def bulk_load(self, dataset, batch_size=None):
        """Warm the store from a whole history dataset (day-0 ETL)."""
        with self._lock:
            embeddings = self.store.bulk_load(
                dataset, batch_size=batch_size or self.batch_size
            )
            self.cache.invalidate([seq.seq_id for seq in dataset])
        return embeddings

    def ingest(self, events):
        """Buffer new events; flushes automatically past ``flush_events``.

        ``events`` is one :class:`~repro.data.EventSequence` chunk or an
        iterable of them.  Returns the number of events accepted.
        """
        chunks = [events] if isinstance(events, EventSequence) else events
        accepted = 0
        for chunk in chunks:
            # Counters advance per accepted chunk so a rejected chunk
            # mid-iterable leaves telemetry consistent with the buffer;
            # the threshold check runs per chunk too, keeping the buffer
            # bounded even when one call ingests a whole stream.
            with self.latency.time("ingest"):
                accepted += self._apply_chunk(chunk)
        return accepted

    def _apply_chunk(self, chunk):
        """Buffer one chunk, auto-flushing past the threshold.

        The single write entry point shared by synchronous
        :meth:`ingest` and the
        :class:`~repro.serving.AsyncIngestPipeline` flusher thread —
        both replay the exact same ``batcher.add`` / threshold-flush
        sequence, which is what makes a drained async ingest
        bit-identical to the synchronous path.  Returns the chunk's
        event count.
        """
        with self._lock:
            self.batcher.add(chunk)
            self.chunks_ingested += 1
            self.events_ingested += len(chunk)
            if self.batcher.should_flush:
                self._flush_locked()
        return len(chunk)

    def flush(self, entity_ids=None):
        """Apply buffered updates as fused micro-batches.

        ``entity_ids=None`` flushes everything; passing ids flushes only
        those entities' chunks and leaves the rest buffered.  Returns the
        ids whose embeddings changed.  Their cache entries are
        invalidated, so the next query recomputes from the fresh state.
        """
        with self._lock:
            return self._flush_locked(entity_ids)

    def _flush_locked(self, entity_ids=None):
        """The flush body; the caller must hold (or be under) the lock."""
        pending = self.batcher.drain(entity_ids)
        if not pending:
            return []
        with self.latency.time("flush"):
            result = advance_entities(self.store.runtime, pending,
                                      self.schema, self.store.state_of,
                                      self.store.put_state,
                                      batch_size=self.batch_size)
            updated = [seq.seq_id for seq in pending]
            self.cache.invalidate(updated)
            self.flushes += 1
            # The real fused batch count, straight from the bucketed
            # plan — not re-derived as ceil(pending / batch_size) here.
            self.flush_batches += result.batches
        return updated

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def query(self, entity_ids):
        """Current embeddings ``(N, d)`` for ``entity_ids``, never stale.

        A requested entity with buffered events gets those events flushed
        first (only the requested entities' chunks — the rest of the
        buffer keeps accumulating toward full micro-batches); remaining
        lookups go through the LRU cache, and misses are computed from
        the sharded store in one batch.  ``entity_ids`` may repeat — each
        occurrence gets its own output row.
        """
        entity_ids = list(entity_ids)
        with self.latency.time("query"):
            with self._lock:
                self.queries += len(entity_ids)
                stale = [entity_id for entity_id in entity_ids
                         if self.batcher.has_pending(entity_id)]
                if stale:
                    self._flush_locked(stale)
                out = np.zeros(
                    (len(entity_ids), self.store.runtime.output_dim),
                    dtype=self.store.runtime.dtype)
                missing_rows, missing_ids = [], []
                for row, entity_id in enumerate(entity_ids):
                    cached = self.cache.get(entity_id)
                    if cached is None:
                        missing_rows.append(row)
                        missing_ids.append(entity_id)
                    else:
                        out[row] = cached
                if missing_ids:
                    fresh = self.store.embeddings(missing_ids)
                    for row, entity_id, embedding in zip(missing_rows,
                                                         missing_ids, fresh):
                        out[row] = embedding
                        self.cache.put(entity_id, embedding)
        return out

    def query_one(self, entity_id):
        """Convenience scalar query: the ``(d,)`` embedding of one entity."""
        return self.query([entity_id])[0]

    def known_entities(self):
        """All entity ids with applied (flushed) state, globally sorted."""
        with self._lock:
            return self.store.known_entities()

    def __contains__(self, entity_id):
        with self._lock:
            return (entity_id in self.store
                    or self.batcher.has_pending(entity_id))

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, directory):
        """Flush pending updates, then write the sharded state bundle."""
        with self._lock:
            self._flush_locked()
            self.store.save(directory)

    def load(self, directory):
        """Replace all serving state with a saved bundle; returns self.

        Refuses while updates are buffered — flush (or discard the
        service) first, restoring under pending events would silently
        apply them to state that is about to be replaced.
        """
        with self._lock:
            if self.batcher.pending_events:
                raise RuntimeError(
                    "cannot restore with %d buffered events pending: call "
                    "flush() first" % self.batcher.pending_events
                )
            self.store.load(directory)
            self.cache.clear()
        return self

    def snapshot(self, directory):
        """Deprecated alias of :meth:`save` (kept for API stability)."""
        warnings.warn("EmbeddingService.snapshot() is deprecated; use "
                      "save(directory)", DeprecationWarning, stacklevel=2)
        self.save(directory)

    def restore(self, directory):
        """Deprecated alias of :meth:`load` (kept for API stability)."""
        warnings.warn("EmbeddingService.restore() is deprecated; use "
                      "load(directory)", DeprecationWarning, stacklevel=2)
        return self.load(directory)

    # ------------------------------------------------------------------
    def stats(self):
        """Serving telemetry: counters, latency, cache, shard balance.

        ``latency_ms`` holds per-operation percentile summaries
        (``{op: {count, mean, p50, p95, p99, max}}`` — milliseconds) for
        ``ingest`` / ``flush`` / ``query``, from the service's
        :class:`~repro.serving.LatencyRecorder`.
        """
        with self._lock:
            return {
                "entities": len(self.store),
                "events_ingested": self.events_ingested,
                "chunks_ingested": self.chunks_ingested,
                "pending_events": self.batcher.pending_events,
                "flushes": self.flushes,
                "flush_batches": self.flush_batches,
                "queries": self.queries,
                "latency_ms": self.latency.summary(),
                "cache": self.cache.stats(),
                "shard_sizes": self.store.shard_sizes(),
                "bytes_per_entity": self.store.bytes_per_entity(),
            }
