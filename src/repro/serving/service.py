"""The online embedding service: ingest -> flush -> query.

:class:`EmbeddingService` is the deployment-facing facade over the
serving stack:

- **ingest(events)** buffers per-entity event chunks in a
  :class:`~repro.serving.MicroBatcher`, auto-flushing once enough events
  accumulate;
- **flush()** drains the buffer through the sharded store's micro-batched
  ``update_many`` (length-bucketed fused batches) and invalidates the
  affected cache entries;
- **query(entity_ids)** serves embeddings through an LRU
  :class:`~repro.serving.EmbeddingCache`, flushing first whenever a
  requested entity has buffered events so a read is never stale;
- **save(dir)/load(dir)** persist the sharded state between workers
  (``snapshot``/``restore`` remain as deprecated aliases).

Where state lives is a construction knob: ``backend="memmap"`` (with
``backend_dir=...``) pages per-shard states from disk instead of RAM,
and ``codec="int8"``/``"uint4"``/``"float16"`` compresses them at rest —
see :mod:`repro.runtime.backends`.

Embeddings served this way match a cold
:meth:`~repro.runtime.FusedEncoderRuntime.embed_dataset` recompute of the
full history to < 1e-10 — asserted by ``tests/serving/``.
"""

from __future__ import annotations

import warnings

import numpy as np

from ..data.sequences import EventSequence
from .cache import EmbeddingCache
from .microbatch import MicroBatcher
from .sharding import ShardedEmbeddingStore

__all__ = ["EmbeddingService"]


class EmbeddingService:
    """Sharded, micro-batched, cached online embedding serving.

    Parameters
    ----------
    encoder:
        A trained recurrent encoder (or a
        :class:`~repro.runtime.FusedEncoderRuntime`).
    schema:
        The :class:`~repro.data.EventSchema` incoming event chunks follow.
    num_shards:
        State partitions of the underlying
        :class:`~repro.serving.ShardedEmbeddingStore`.
    cache_capacity:
        Hot-embedding LRU size (0 disables caching).
    flush_events:
        Buffered-event threshold that triggers an automatic flush.
    batch_size:
        Rows per fused batch when flushing and bulk-loading.
    precision:
        Dtype policy of the underlying fused runtime (None: the runtime
        default, float32).
    workers:
        Bucket-parallel worker count for flushes and bulk loads (None:
        the runtime default, serial; any value is bit-identical).
    backend:
        Per-shard state storage forwarded to the sharded store:
        ``"dict"``/None (in-RAM, the default), ``"memmap"`` (out-of-core
        shards under ``backend_dir``), or a one-arg factory
        ``index -> StateBackend``.
    codec:
        At-rest :class:`~repro.runtime.StateCodec` (``"identity"``/None,
        ``"float16"``, ``"int8"``, ``"uint4"``); applies to shard files
        and state bundles, orthogonal to ``precision``.
    backend_dir:
        Root directory of the ``"memmap"`` backend's per-shard state.
    """

    def __init__(self, encoder, schema, num_shards=8, cache_capacity=1024,
                 flush_events=256, batch_size=64, precision=None,
                 workers=None, backend=None, codec=None, backend_dir=None):
        self.store = ShardedEmbeddingStore(encoder, num_shards=num_shards,
                                           precision=precision,
                                           workers=workers, backend=backend,
                                           codec=codec,
                                           backend_dir=backend_dir)
        self.schema = schema
        self.batch_size = int(batch_size)
        self.cache = EmbeddingCache(cache_capacity)
        self.batcher = MicroBatcher(flush_events=flush_events,
                                    time_field=schema.time_field,
                                    last_time_of=self.store.last_time)
        self.events_ingested = 0
        self.chunks_ingested = 0
        self.flushes = 0
        self.flush_batches = 0
        self.queries = 0

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def bulk_load(self, dataset, batch_size=None):
        """Warm the store from a whole history dataset (day-0 ETL)."""
        embeddings = self.store.bulk_load(
            dataset, batch_size=batch_size or self.batch_size
        )
        self.cache.invalidate([seq.seq_id for seq in dataset])
        return embeddings

    def ingest(self, events):
        """Buffer new events; flushes automatically past ``flush_events``.

        ``events`` is one :class:`~repro.data.EventSequence` chunk or an
        iterable of them.  Returns the number of events accepted.
        """
        chunks = [events] if isinstance(events, EventSequence) else events
        accepted = 0
        for chunk in chunks:
            self.batcher.add(chunk)
            # Counters advance per accepted chunk so a rejected chunk
            # mid-iterable leaves telemetry consistent with the buffer;
            # the threshold check runs per chunk too, keeping the buffer
            # bounded even when one call ingests a whole stream.
            self.chunks_ingested += 1
            self.events_ingested += len(chunk)
            accepted += len(chunk)
            if self.batcher.should_flush:
                self.flush()
        return accepted

    def flush(self, entity_ids=None):
        """Apply buffered updates as fused micro-batches.

        ``entity_ids=None`` flushes everything; passing ids flushes only
        those entities' chunks and leaves the rest buffered.  Returns the
        ids whose embeddings changed.  Their cache entries are
        invalidated, so the next query recomputes from the fresh state.
        """
        pending = self.batcher.drain(entity_ids)
        if not pending:
            return []
        self.store.update_many(pending, self.schema,
                               batch_size=self.batch_size)
        updated = [seq.seq_id for seq in pending]
        self.cache.invalidate(updated)
        self.flushes += 1
        self.flush_batches += -(-len(pending) // self.batch_size)
        return updated

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def query(self, entity_ids):
        """Current embeddings ``(N, d)`` for ``entity_ids``, never stale.

        A requested entity with buffered events gets those events flushed
        first (only the requested entities' chunks — the rest of the
        buffer keeps accumulating toward full micro-batches); remaining
        lookups go through the LRU cache, and misses are computed from
        the sharded store in one batch.
        """
        entity_ids = list(entity_ids)
        self.queries += len(entity_ids)
        stale = [entity_id for entity_id in entity_ids
                 if self.batcher.has_pending(entity_id)]
        if stale:
            self.flush(stale)
        out = np.zeros((len(entity_ids), self.store.runtime.output_dim),
                       dtype=self.store.runtime.dtype)
        missing_rows, missing_ids = [], []
        for row, entity_id in enumerate(entity_ids):
            cached = self.cache.get(entity_id)
            if cached is None:
                missing_rows.append(row)
                missing_ids.append(entity_id)
            else:
                out[row] = cached
        if missing_ids:
            fresh = self.store.embeddings(missing_ids)
            for row, entity_id, embedding in zip(missing_rows, missing_ids,
                                                 fresh):
                out[row] = embedding
                self.cache.put(entity_id, embedding)
        return out

    def query_one(self, entity_id):
        """Convenience scalar query: the ``(d,)`` embedding of one entity."""
        return self.query([entity_id])[0]

    def known_entities(self):
        """All entity ids with applied (flushed) state, globally sorted."""
        return self.store.known_entities()

    def __contains__(self, entity_id):
        return entity_id in self.store or self.batcher.has_pending(entity_id)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, directory):
        """Flush pending updates, then write the sharded state bundle."""
        self.flush()
        self.store.save(directory)

    def load(self, directory):
        """Replace all serving state with a saved bundle; returns self.

        Refuses while updates are buffered — flush (or discard the
        service) first, restoring under pending events would silently
        apply them to state that is about to be replaced.
        """
        if self.batcher.pending_events:
            raise RuntimeError(
                "cannot restore with %d buffered events pending: call "
                "flush() first" % self.batcher.pending_events
            )
        self.store.load(directory)
        self.cache.clear()
        return self

    def snapshot(self, directory):
        """Deprecated alias of :meth:`save` (kept for API stability)."""
        warnings.warn("EmbeddingService.snapshot() is deprecated; use "
                      "save(directory)", DeprecationWarning, stacklevel=2)
        self.save(directory)

    def restore(self, directory):
        """Deprecated alias of :meth:`load` (kept for API stability)."""
        warnings.warn("EmbeddingService.restore() is deprecated; use "
                      "load(directory)", DeprecationWarning, stacklevel=2)
        return self.load(directory)

    # ------------------------------------------------------------------
    def stats(self):
        """Serving telemetry: counters, cache behaviour, shard balance."""
        return {
            "entities": len(self.store),
            "events_ingested": self.events_ingested,
            "chunks_ingested": self.chunks_ingested,
            "pending_events": self.batcher.pending_events,
            "flushes": self.flushes,
            "flush_batches": self.flush_batches,
            "queries": self.queries,
            "cache": self.cache.stats(),
            "shard_sizes": self.store.shard_sizes(),
            "bytes_per_entity": self.store.bytes_per_entity(),
        }
