"""Hash-partitioned embedding state: many shards, one runtime.

A single flat :class:`~repro.runtime.EmbeddingStore` dict stops scaling
long before the paper's 90M-card population: snapshots become one giant
file, and there is no unit of state that can be moved, restored, or owned
independently.  :class:`ShardedEmbeddingStore` splits the per-entity state
across ``num_shards`` stores by a stable hash of the entity id.  Every
shard shares the same :class:`~repro.runtime.FusedEncoderRuntime` (weights
are process-wide), so compute stays globally batched — only *state* is
partitioned:

- routing is deterministic across processes (CRC32 of the id's repr, not
  Python's salted ``hash``), so a snapshot written by one worker restores
  into any other;
- snapshots are one ``.npz`` per shard plus a manifest, restored
  shard-by-shard;
- bulk loads and micro-batched updates batch *across* shards — the fused
  kernels see the global length-bucketed plan, and final states scatter to
  their owning shards.
"""

from __future__ import annotations

import os
import zlib

import numpy as np

from ..nn.serialization import load_arrays, save_arrays
from ..runtime import EmbeddingStore, FusedEncoderRuntime
from ..runtime.store import advance_entities, bulk_load_states

__all__ = ["ShardedEmbeddingStore", "route_entity"]

_MANIFEST = "manifest.npz"


def route_entity(entity_id, num_shards):
    """Deterministic shard index of an entity — stable across processes.

    Ids that compare equal as dict keys must route identically, so
    integer-like ids (``np.int64(5)``, ``5``) are canonicalised before
    hashing — a snapshot bulk-loaded under numpy ids stays reachable to
    plain-int queries.
    """
    if isinstance(entity_id, (bool, int, np.bool_, np.integer)):
        key = str(int(entity_id))
    elif isinstance(entity_id, (float, np.floating)):
        value = float(entity_id)
        key = str(int(value)) if value.is_integer() else repr(value)
    elif isinstance(entity_id, str):
        key = entity_id
    else:
        key = repr(entity_id)
    return zlib.crc32(key.encode("utf-8")) % num_shards


class ShardedEmbeddingStore:
    """Entity states hash-partitioned over ``num_shards`` embedding stores.

    Mirrors the :class:`~repro.runtime.EmbeddingStore` API (membership,
    ``embedding``/``embeddings``, ``bulk_load``, ``update``,
    ``update_many``, ``snapshot``/``restore``) so callers can swap a flat
    store for a sharded one without code changes.
    """

    def __init__(self, encoder, num_shards=8, precision=None, workers=None):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if isinstance(encoder, FusedEncoderRuntime):
            self.runtime = encoder
            if precision is not None and self.runtime.precision != precision:
                raise ValueError(
                    "store precision %r conflicts with the runtime's %r"
                    % (precision, self.runtime.precision)
                )
            if workers is not None:
                self.runtime.workers = max(1, int(workers))
        else:
            kwargs = {}
            if precision is not None:
                kwargs["precision"] = precision
            if workers is not None:
                kwargs["workers"] = workers
            self.runtime = FusedEncoderRuntime(encoder, **kwargs)
        self.num_shards = int(num_shards)
        self.shards = [EmbeddingStore(self.runtime)
                       for _ in range(self.num_shards)]

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def shard_of(self, entity_id):
        """Index of the shard owning ``entity_id``."""
        return route_entity(entity_id, self.num_shards)

    def shard_for(self, entity_id):
        """The :class:`EmbeddingStore` owning ``entity_id``."""
        return self.shards[self.shard_of(entity_id)]

    def shard_sizes(self):
        """Entities per shard — balance telemetry."""
        return [len(shard) for shard in self.shards]

    # ------------------------------------------------------------------
    # introspection (the flat-store API, routed)
    # ------------------------------------------------------------------
    def __len__(self):
        return sum(len(shard) for shard in self.shards)

    def __contains__(self, entity_id):
        return entity_id in self.shard_for(entity_id)

    def known_entities(self):
        """All entity ids across shards, globally sorted."""
        merged = []
        for shard in self.shards:
            merged.extend(shard.known_entities())
        return sorted(merged)

    def last_time(self, entity_id):
        """Timestamp of the entity's most recent folded event (or None)."""
        return self.shard_for(entity_id).last_time(entity_id)

    def state_of(self, entity_id):
        """``(hidden, cell, last_time)`` from the owning shard, else None."""
        return self.shard_for(entity_id).state_of(entity_id)

    def put_state(self, entity_id, hidden, cell=None, last_time=None):
        """Record an entity's recurrent state on its owning shard."""
        self.shard_for(entity_id).put_state(entity_id, hidden, cell=cell,
                                            last_time=last_time)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def embedding(self, entity_id):
        """Current embedding of one entity, ``(d,)``, shard-routed."""
        return self.shard_for(entity_id).embedding(entity_id)

    def embeddings(self, entity_ids=None):
        """Embedding matrix for ``entity_ids`` (default: all, sorted)."""
        if entity_ids is None:
            entity_ids = self.known_entities()
        if not len(entity_ids):
            return np.zeros((0, self.runtime.output_dim))
        rows = []
        for entity_id in entity_ids:
            state = self.state_of(entity_id)
            if state is None:
                raise KeyError("unknown entity %r" % entity_id)
            rows.append(state[0])
        return self.runtime.head(np.stack(rows))

    # ------------------------------------------------------------------
    # writes: globally batched compute, shard-scattered state
    # ------------------------------------------------------------------
    def bulk_load(self, dataset, batch_size=64, workers=None):
        """Embed a whole dataset; states scatter to their owning shards."""
        return bulk_load_states(self.runtime, dataset, self.put_state,
                                batch_size=batch_size, workers=workers)

    def update(self, entity_id, events, schema):
        """Per-entity incremental refresh, routed to the owning shard."""
        return self.shard_for(entity_id).update(entity_id, events, schema)

    def update_many(self, sequences, schema, batch_size=64, workers=None):
        """Micro-batched advance across shards.

        Entities from different shards share fused batches (the plan is
        global); only the state reads/writes route per shard.
        """
        return advance_entities(self.runtime, sequences, schema,
                                self.state_of, self.put_state,
                                batch_size=batch_size, workers=workers)

    # ------------------------------------------------------------------
    # persistence: one npz per shard + a manifest
    # ------------------------------------------------------------------
    def _shard_path(self, directory, index):
        return os.path.join(directory, "shard_%04d.npz" % index)

    def snapshot(self, directory):
        """Write every shard to ``directory`` (created if needed)."""
        os.makedirs(directory, exist_ok=True)
        save_arrays(os.path.join(directory, _MANIFEST), {
            "num_shards": np.asarray(self.num_shards),
            "kind": np.asarray("lstm" if self.runtime.is_lstm else "gru"),
        })
        for index, shard in enumerate(self.shards):
            shard.snapshot(self._shard_path(directory, index))

    def restore(self, directory):
        """Load a snapshot written by :meth:`snapshot`; returns self.

        The snapshot's shard count must match this store's — routing is a
        function of ``num_shards``, so restoring across a reshard would
        silently misroute every lookup.
        """
        manifest_path = os.path.join(directory, _MANIFEST)
        if not os.path.exists(manifest_path):
            raise FileNotFoundError(
                "no sharded snapshot manifest at %r" % manifest_path
            )
        manifest = load_arrays(manifest_path)
        snapshot_shards = int(manifest["num_shards"])
        if snapshot_shards != self.num_shards:
            raise ValueError(
                "snapshot holds %d shards but this store routes over %d; "
                "construct the store with num_shards=%d to restore it"
                % (snapshot_shards, self.num_shards, snapshot_shards)
            )
        for index, shard in enumerate(self.shards):
            shard.restore(self._shard_path(directory, index))
        return self
