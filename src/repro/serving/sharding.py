"""Hash-partitioned embedding state: many shards, one runtime.

A single flat :class:`~repro.runtime.EmbeddingStore` dict stops scaling
long before the paper's 90M-card population: snapshots become one giant
file, and there is no unit of state that can be moved, restored, or owned
independently.  :class:`ShardedEmbeddingStore` splits the per-entity state
across ``num_shards`` stores by a stable hash of the entity id.  Every
shard shares the same :class:`~repro.runtime.FusedEncoderRuntime` (weights
are process-wide), so compute stays globally batched — only *state* is
partitioned:

- routing is deterministic across processes (CRC32 of the id's repr, not
  Python's salted ``hash``), so a snapshot written by one worker restores
  into any other;
- each routing shard owns its own :class:`~repro.runtime.StateBackend`
  (in-RAM dicts by default; ``backend="memmap"`` pages each shard's
  states from its own directory under ``backend_dir``) and encodes at
  rest through a shared :class:`~repro.runtime.StateCodec`;
- state bundles are one sub-directory per shard plus a JSON manifest
  (:meth:`~ShardedEmbeddingStore.save` / :meth:`~ShardedEmbeddingStore.load`;
  the legacy per-shard ``.npz`` snapshots stay readable);
- bulk loads and micro-batched updates batch *across* shards — the fused
  kernels see the global length-bucketed plan, and final states scatter to
  their owning shards.
"""

from __future__ import annotations

import json
import os
import warnings
import zlib

import numpy as np

from ..nn.serialization import load_arrays
from ..runtime import EmbeddingStore, FusedEncoderRuntime
from ..runtime.backends import (MemmapStateBackend, StateBackend,
                                resolve_backend)
from ..runtime.store import advance_entities, bulk_load_states

__all__ = ["ShardedEmbeddingStore", "route_entity"]

_LEGACY_MANIFEST = "manifest.npz"
_MANIFEST = "manifest.json"

#: Format tag of the sharded state bundle manifest.
SHARDED_FORMAT = "repro-sharded-state-v1"


def route_entity(entity_id, num_shards):
    """Deterministic shard index of an entity — stable across processes.

    Ids that compare equal as dict keys must route identically, so
    integer-like ids (``np.int64(5)``, ``5``) are canonicalised before
    hashing — a snapshot bulk-loaded under numpy ids stays reachable to
    plain-int queries.
    """
    if isinstance(entity_id, (bool, int, np.bool_, np.integer)):
        key = str(int(entity_id))
    elif isinstance(entity_id, (float, np.floating)):
        value = float(entity_id)
        key = str(int(value)) if value.is_integer() else repr(value)
    elif isinstance(entity_id, str):
        key = entity_id
    else:
        key = repr(entity_id)
    return zlib.crc32(key.encode("utf-8")) % num_shards


def _shard_backends(backend, backend_dir, num_shards):
    """One :class:`StateBackend` per routing shard.

    ``backend`` may be ``None``/``"dict"`` (fresh dict backends),
    ``"memmap"`` (per-shard :class:`MemmapStateBackend` directories
    ``state_%04d`` under ``backend_dir``), or a one-arg callable
    ``index -> StateBackend``.  A single shared instance is rejected:
    shards own disjoint state and cannot alias one backend.
    """
    if isinstance(backend, StateBackend):
        raise ValueError(
            "a sharded store needs one backend per shard — pass a factory "
            "callable (index -> StateBackend) instead of a single instance"
        )
    if backend == "memmap":
        if backend_dir is None:
            raise ValueError(
                "backend='memmap' needs a directory: pass backend_dir=..."
            )
        return [MemmapStateBackend(os.path.join(str(backend_dir),
                                                "state_%04d" % index))
                for index in range(num_shards)]
    if callable(backend):
        backends = [backend(index) for index in range(num_shards)]
        for candidate in backends:
            if not isinstance(candidate, StateBackend):
                raise TypeError("backend factory must return a StateBackend")
        if len(set(map(id, backends))) != num_shards:
            raise ValueError("backend factory returned the same instance "
                             "for multiple shards")
        return backends
    return [resolve_backend(backend) for _ in range(num_shards)]


class ShardedEmbeddingStore:
    """Entity states hash-partitioned over ``num_shards`` embedding stores.

    Mirrors the :class:`~repro.runtime.EmbeddingStore` API (membership,
    ``embedding``/``embeddings``, ``bulk_load``, ``update``,
    ``update_many``, ``save``/``load``) so callers can swap a flat store
    for a sharded one without code changes.

    Parameters
    ----------
    encoder:
        A trained recurrent encoder or an existing
        :class:`~repro.runtime.FusedEncoderRuntime`.
    num_shards:
        Routing partitions (fixed for the store's lifetime — routing is
        a function of the count).
    precision, workers:
        Runtime policy knobs, as on :class:`~repro.runtime.EmbeddingStore`.
    backend:
        Per-shard state storage: ``"dict"``/None, ``"memmap"`` (rooted at
        ``backend_dir``), or a one-arg factory ``index -> StateBackend``.
    codec:
        At-rest :class:`~repro.runtime.StateCodec` shared by all shards.
    backend_dir:
        Root directory of the ``"memmap"`` backend's per-shard state.
    """

    def __init__(self, encoder, num_shards=8, precision=None, workers=None,
                 backend=None, codec=None, backend_dir=None):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if isinstance(encoder, FusedEncoderRuntime):
            self.runtime = encoder
            if precision is not None and self.runtime.precision != precision:
                raise ValueError(
                    "store precision %r conflicts with the runtime's %r"
                    % (precision, self.runtime.precision)
                )
            if workers is not None:
                self.runtime.workers = max(1, int(workers))
        else:
            kwargs = {}
            if precision is not None:
                kwargs["precision"] = precision
            if workers is not None:
                kwargs["workers"] = workers
            self.runtime = FusedEncoderRuntime(encoder, **kwargs)
        self.num_shards = int(num_shards)
        self.shards = [
            EmbeddingStore(self.runtime, backend=shard_backend, codec=codec)
            for shard_backend in _shard_backends(backend, backend_dir,
                                                 self.num_shards)
        ]

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def shard_of(self, entity_id):
        """Index of the shard owning ``entity_id``."""
        return route_entity(entity_id, self.num_shards)

    def shard_for(self, entity_id):
        """The :class:`EmbeddingStore` owning ``entity_id``."""
        return self.shards[self.shard_of(entity_id)]

    def shard_sizes(self):
        """Entities per shard — balance telemetry."""
        return [len(shard) for shard in self.shards]

    def backend_stats(self):
        """Per-shard backend telemetry (entities, LRU counters, ...)."""
        return [shard.backend.stats() for shard in self.shards]

    def bytes_per_entity(self):
        """At-rest bytes per entity (all shards share codec + layout)."""
        return self.shards[0].bytes_per_entity()

    # ------------------------------------------------------------------
    # introspection (the flat-store API, routed)
    # ------------------------------------------------------------------
    def __len__(self):
        return sum(len(shard) for shard in self.shards)

    def __contains__(self, entity_id):
        return entity_id in self.shard_for(entity_id)

    def known_entities(self):
        """All entity ids across shards, globally sorted."""
        merged = []
        for shard in self.shards:
            merged.extend(shard.known_entities())
        return sorted(merged)

    def last_time(self, entity_id):
        """Timestamp of the entity's most recent folded event (or None)."""
        return self.shard_for(entity_id).last_time(entity_id)

    def state_of(self, entity_id):
        """``(hidden, cell, last_time)`` from the owning shard, else None."""
        return self.shard_for(entity_id).state_of(entity_id)

    def put_state(self, entity_id, hidden, cell=None, last_time=None):
        """Record an entity's recurrent state on its owning shard.

        ``hidden`` (and ``cell`` for LSTM runtimes) are ``(H,)`` buffers,
        copied into the owning shard's policy dtype on the way in.
        """
        self.shard_for(entity_id).put_state(entity_id, hidden, cell=cell,
                                            last_time=last_time)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def embedding(self, entity_id):
        """Current embedding of one entity, ``(d,)``, shard-routed."""
        return self.shard_for(entity_id).embedding(entity_id)

    def embeddings(self, entity_ids=None):
        """Embedding matrix for ``entity_ids`` (default: all, sorted)."""
        if entity_ids is None:
            entity_ids = self.known_entities()
        if not len(entity_ids):
            return np.zeros((0, self.runtime.output_dim),
                            dtype=self.runtime.dtype)
        rows = []
        for entity_id in entity_ids:
            state = self.state_of(entity_id)
            if state is None:
                raise KeyError("unknown entity %r" % entity_id)
            rows.append(state[0])
        return self.runtime.head(np.stack(rows))

    # ------------------------------------------------------------------
    # writes: globally batched compute, shard-scattered state
    # ------------------------------------------------------------------
    def bulk_load(self, dataset, batch_size=64, workers=None):
        """Embed a whole dataset; states scatter to their owning shards."""
        return bulk_load_states(self.runtime, dataset, self.put_state,
                                batch_size=batch_size, workers=workers)

    def update(self, entity_id, events, schema):
        """Per-entity incremental refresh, routed to the owning shard."""
        return self.shard_for(entity_id).update(entity_id, events, schema)

    def update_many(self, sequences, schema, batch_size=64, workers=None):
        """Micro-batched advance across shards.

        Entities from different shards share fused batches (the plan is
        global); only the state reads/writes route per shard.  Returns
        the refreshed ``(N, d)`` embeddings in input order; callers that
        need the fused batch count call
        :func:`~repro.runtime.advance_entities` directly.
        """
        return advance_entities(self.runtime, sequences, schema,
                                self.state_of, self.put_state,
                                batch_size=batch_size,
                                workers=workers).embeddings

    # ------------------------------------------------------------------
    # persistence: one state bundle per shard + a JSON manifest
    # ------------------------------------------------------------------
    def _shard_dir(self, directory, index):
        return os.path.join(str(directory), "shard_%04d" % index)

    def _legacy_shard_path(self, directory, index):
        return os.path.join(str(directory), "shard_%04d.npz" % index)

    def flush(self):
        """Make every shard backend's pending writes durable."""
        for shard in self.shards:
            shard.flush()

    def close(self):
        """Release every shard backend's background resources."""
        for shard in self.shards:
            shard.close()

    def save(self, directory):
        """Write every shard's state bundle under ``directory``.

        Layout: ``manifest.json`` (format tag, shard count, state kind)
        plus one ``shard_%04d/`` bundle directory per routing shard —
        each of those is a flat-store bundle, so individual shards can be
        moved or loaded independently.
        """
        directory = str(directory)
        os.makedirs(directory, exist_ok=True)
        manifest = {"format": SHARDED_FORMAT, "num_shards": self.num_shards,
                    "kind": "lstm" if self.runtime.is_lstm else "gru"}
        with open(os.path.join(directory, _MANIFEST), "w") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        for index, shard in enumerate(self.shards):
            shard.save(self._shard_dir(directory, index))

    def load(self, directory):
        """Load a sharded bundle (or legacy snapshot); returns self.

        The bundle's shard count must match this store's — routing is a
        function of ``num_shards``, so loading across a reshard would
        silently misroute every lookup.  Directories written by the
        pre-backend ``snapshot()`` (``manifest.npz`` + per-shard ``.npz``)
        load transparently.
        """
        directory = str(directory)
        manifest_path = os.path.join(directory, _MANIFEST)
        legacy_path = os.path.join(directory, _LEGACY_MANIFEST)
        if os.path.exists(manifest_path):
            with open(manifest_path) as handle:
                snapshot_shards = int(json.load(handle)["num_shards"])
            shard_paths = [self._shard_dir(directory, index)
                           for index in range(self.num_shards)]
        elif os.path.exists(legacy_path):
            snapshot_shards = int(load_arrays(legacy_path)["num_shards"])
            shard_paths = [self._legacy_shard_path(directory, index)
                           for index in range(self.num_shards)]
        else:
            raise FileNotFoundError(
                "no sharded snapshot manifest at %r" % manifest_path
            )
        if snapshot_shards != self.num_shards:
            raise ValueError(
                "snapshot holds %d shards but this store routes over %d; "
                "construct the store with num_shards=%d to restore it"
                % (snapshot_shards, self.num_shards, snapshot_shards)
            )
        for shard, path in zip(self.shards, shard_paths):
            shard.load(path)
        return self

    def snapshot(self, directory):
        """Deprecated alias of :meth:`save` (kept for API stability)."""
        warnings.warn("ShardedEmbeddingStore.snapshot() is deprecated; use "
                      "save(directory)", DeprecationWarning, stacklevel=2)
        self.save(directory)

    def restore(self, directory):
        """Deprecated alias of :meth:`load` (kept for API stability)."""
        warnings.warn("ShardedEmbeddingStore.restore() is deprecated; use "
                      "load(directory)", DeprecationWarning, stacklevel=2)
        return self.load(directory)
