"""Lightweight latency percentiles for the serving read/write path.

Production feature stores state their SLOs in *tail* latency — the p99
of a query issued while ingest pressure is high — not in mean
throughput.  :class:`LatencyRecorder` is the measurement side of that
contract: every service operation (``ingest`` / ``flush`` / ``query``)
wraps itself in :meth:`LatencyRecorder.time`, and
:meth:`EmbeddingService.stats` exposes the reduced percentiles as its
``latency_ms`` subtree — the same numbers the million-entity stress
benchmark records into ``BENCH_serving.json`` and CI gates
(``latency_ms.query.p99=lower``).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

import numpy as np

__all__ = ["LatencyRecorder"]


class LatencyRecorder:
    """Thread-safe per-operation latency samples with percentile summaries.

    Each named operation keeps its most recent ``capacity`` wall-clock
    samples in a fixed-size float64 ring buffer — recording is O(1),
    allocation-free after the first sample, and cheap enough
    (microseconds) to sit on the hot serving path.  Lifetime sample
    count and total are kept alongside, so :meth:`summary` reports an
    exact ``count``/``mean`` while the percentiles describe the retained
    window.  All methods are safe to call from any thread (one internal
    lock; no sample is ever torn or lost).
    """

    #: Percentiles reported by :meth:`summary` (as ``p50``/``p95``/``p99``).
    PERCENTILES = (50, 95, 99)

    def __init__(self, capacity=65536):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._rings = {}    # op -> (capacity,) float64 seconds ring
        self._counts = {}   # op -> lifetime sample count
        self._totals = {}   # op -> lifetime seconds

    def record(self, op, seconds):
        """Add one sample: ``seconds`` (a float scalar) spent in ``op``."""
        seconds = float(seconds)
        with self._lock:
            ring = self._rings.get(op)
            if ring is None:
                ring = self._rings[op] = np.zeros(self.capacity,
                                                  dtype=np.float64)
                self._counts[op] = 0
                self._totals[op] = 0.0
            ring[self._counts[op] % self.capacity] = seconds
            self._counts[op] += 1
            self._totals[op] += seconds

    @contextmanager
    def time(self, op):
        """Record the wall-clock duration of the ``with`` body as ``op``.

        The sample is recorded even when the body raises — a failed call
        still occupied the operation's latency budget.
        """
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.record(op, time.perf_counter() - start)

    def operations(self):
        """Sorted names of every operation with at least one sample."""
        with self._lock:
            return sorted(self._rings)

    def summary(self):
        """Millisecond statistics per operation.

        Returns ``{op: {"count", "mean", "p50", "p95", "p99", "max"}}``
        — floats in milliseconds, except ``count`` (lifetime sample
        count).  ``mean`` is exact over the lifetime; the percentiles
        and ``max`` cover the retained window of up to ``capacity`` most
        recent samples.
        """
        with self._lock:
            out = {}
            for op, ring in self._rings.items():
                count = self._counts[op]
                window = ring[:min(count, self.capacity)]
                quantiles = np.percentile(window, self.PERCENTILES)
                stats = {
                    "count": int(count),
                    "mean": float(self._totals[op] / count) * 1e3,
                    "max": float(window.max()) * 1e3,
                }
                for tag, value in zip(self.PERCENTILES, quantiles):
                    stats["p%d" % tag] = float(value) * 1e3
                out[op] = stats
            return out

    def reset(self):
        """Drop every sample and counter (e.g. after a warm-up phase)."""
        with self._lock:
            self._rings = {}
            self._counts = {}
            self._totals = {}
