"""Replayable event logs: turn a dataset into an online arrival stream.

The serving stack is exercised (and property-tested) by *replaying* a
synthetic event log against an :class:`~repro.serving.EmbeddingService`:
each entity's history is cut into small chunks, the chunks of all entities
interleave into one arrival-ordered log (per-entity order preserved), and
the driver feeds the log through ``ingest``/``query``.  Replaying the full
log must land every entity on exactly the embedding a cold
``embed_dataset`` recompute would produce.
"""

from __future__ import annotations

import numpy as np

__all__ = ["build_event_log", "replay_event_log"]


def build_event_log(dataset, chunk_events=8, seed=0):
    """Interleave per-entity chunk arrivals into one deterministic log.

    Each sequence is cut into chunks of 1 .. ``2 * chunk_events - 1``
    events (mean ``chunk_events``); the next log entry is drawn from a
    random entity that still has chunks queued, so arrivals interleave the
    way production streams do while every entity's own chunks stay in
    time order.  Returns a list of :class:`~repro.data.EventSequence`.
    """
    if chunk_events < 1:
        raise ValueError("chunk_events must be >= 1")
    rng = np.random.default_rng(seed)
    queues = []
    for seq in dataset:
        cuts = [0]
        while cuts[-1] < len(seq):
            step = int(rng.integers(1, 2 * chunk_events))
            cuts.append(min(len(seq), cuts[-1] + step))
        if len(cuts) > 1:
            queues.append([seq.slice(start, stop)
                           for start, stop in zip(cuts[:-1], cuts[1:])])
    log = []
    while queues:
        pick = int(rng.integers(len(queues)))
        log.append(queues[pick].pop(0))
        if not queues[pick]:
            queues.pop(pick)
    return log


def replay_event_log(service, log, query_every=None):
    """Feed a log through a service; returns the service's stats dict.

    ``query_every=k`` also queries every k-th chunk's entity right after
    ingesting it — read-your-writes traffic that exercises the pending
    flush-on-query path and the cache.  Ends with a final flush so all
    buffered events are applied.
    """
    for index, chunk in enumerate(log):
        service.ingest(chunk)
        if query_every and (index + 1) % query_every == 0:
            service.query([chunk.seq_id])
    service.flush()
    return service.stats()
