"""Micro-batched ingestion: buffer per-entity updates, flush fused batches.

One-entity-at-a-time :meth:`~repro.runtime.EmbeddingStore.update` calls
pay the full per-call overhead (collate, weight export, kernel launch) for
a handful of events.  The :class:`MicroBatcher` absorbs incoming event
chunks instead: chunks accumulate per entity (and coalesce in arrival
order), and a flush drains the whole buffer through
:func:`repro.runtime.advance_entities` — length-bucketed fused batches,
one kernel call per ~``batch_size`` entities.
"""

from __future__ import annotations

import numpy as np

from ..data.sequences import EventSequence

__all__ = ["MicroBatcher", "coalesce_chunks"]


def coalesce_chunks(chunks):
    """Merge an entity's buffered chunks into one ordered event chunk.

    Chunk boundaries must be time-ordered (a later chunk may not start
    before the previous one ended) — the same append-only contract the
    incremental store relies on.

    The merged label is the latest **non-None** label among the chunks
    (a label arriving mid-stream annotates the whole entity, it is not
    dropped just because the first buffered chunk predates it).  Two
    *different* non-None labels are a hard conflict — there is no
    defensible winner for a single entity — and raise ``ValueError``.
    """
    if len(chunks) == 1:
        return chunks[0]
    first = chunks[0]
    label = None
    for chunk in chunks:
        if chunk.label is None:
            continue
        if label is not None and chunk.label != label:
            raise ValueError(
                "conflicting labels for entity %r in one buffer: %r vs %r"
                % (first.seq_id, label, chunk.label)
            )
        label = chunk.label
    return EventSequence(
        seq_id=first.seq_id,
        fields={name: np.concatenate([chunk.fields[name]
                                      for chunk in chunks])
                for name in first.fields},
        label=label,
    )


class MicroBatcher:
    """Pending-update buffer in front of an embedding store.

    ``add`` enqueues one entity's new events; ``drain`` empties the buffer
    as a list of coalesced per-entity chunks ready for
    ``store.update_many``.  ``should_flush`` trips once
    ``pending_events >= flush_events`` — the service's auto-flush signal.
    """

    def __init__(self, flush_events=256, time_field=None, last_time_of=None):
        if flush_events < 1:
            raise ValueError("flush_events must be >= 1")
        self.flush_events = int(flush_events)
        self.time_field = time_field
        self.last_time_of = last_time_of
        self._chunks = {}  # entity id -> [EventSequence, ...] arrival order
        self._pending_events = 0

    # ------------------------------------------------------------------
    def add(self, events):
        """Buffer one entity's new events; returns pending-event count."""
        if not isinstance(events, EventSequence):
            raise TypeError("ingest expects EventSequence chunks, got %s"
                            % type(events).__name__)
        if len(events) == 0:
            raise ValueError("cannot ingest an empty event chunk")
        queue = self._chunks.get(events.seq_id)
        if self.time_field is not None:
            # The append-only contract: a chunk may not start before the
            # entity's buffered tail — or, when the buffer is empty, before
            # the store's already-applied state (``last_time_of``).  Checked
            # before any buffer mutation so a rejected chunk leaves no
            # empty queue behind.
            if queue:
                previous_end = queue[-1].fields[self.time_field][-1]
            elif self.last_time_of is not None:
                previous_end = self.last_time_of(events.seq_id)
            else:
                previous_end = None
            if previous_end is not None:
                next_start = events.fields[self.time_field][0]
                if next_start < previous_end:
                    raise ValueError(
                        "out-of-order ingest for entity %r: chunk starts "
                        "at %s before already-ingested events ending at %s"
                        % (events.seq_id, next_start, previous_end)
                    )
        if queue is None:
            queue = self._chunks[events.seq_id] = []
        queue.append(events)
        self._pending_events += len(events)
        return self._pending_events

    # ------------------------------------------------------------------
    @property
    def pending_events(self):
        """Total buffered events across all entities."""
        return self._pending_events

    @property
    def pending_entities(self):
        """Number of entities with at least one buffered chunk."""
        return len(self._chunks)

    @property
    def should_flush(self):
        """True once the buffer reached ``flush_events`` pending events."""
        return self._pending_events >= self.flush_events

    def has_pending(self, entity_id):
        """Whether this entity has buffered (not yet applied) events."""
        return entity_id in self._chunks

    # ------------------------------------------------------------------
    def drain(self, entity_ids=None):
        """Drain buffered chunks; returns one coalesced chunk per entity.

        ``entity_ids=None`` empties the whole buffer.  Passing ids drains
        only those entities and leaves the rest buffered — the service
        uses this so a query flushes just the entities it needs instead
        of collapsing everyone else's micro-batches.
        """
        if entity_ids is None:
            merged = [coalesce_chunks(chunks)
                      for chunks in self._chunks.values()]
            self._chunks = {}
            self._pending_events = 0
            return merged
        merged = []
        for entity_id in entity_ids:
            chunks = self._chunks.pop(entity_id, None)
            if chunks:
                merged.append(coalesce_chunks(chunks))
                self._pending_events -= sum(len(chunk) for chunk in chunks)
        return merged
