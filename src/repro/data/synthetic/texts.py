"""Non-repeatable control sequences (Figure 2d).

The paper contrasts transactional data with text: sub-samples of the same
post are *not* systematically closer (in event-type distribution) to each
other than sub-samples of different posts, because word frequencies are
dominated by a shared corpus-wide distribution rather than by a stable
per-author process.

We reproduce the control by drawing every "post" from the *same* global
Zipfian token distribution — so the within/between KL histograms overlap,
unlike the transactional worlds.
"""

from __future__ import annotations

import numpy as np

from ..schema import EventSchema
from ..sequences import EventSequence, SequenceDataset
from .base import sample_length

__all__ = ["make_texts_dataset", "TEXTS_SCHEMA"]

_VOCAB = 50
TEXTS_SCHEMA = EventSchema(categorical={"token": _VOCAB + 1}, numerical=())


def make_texts_dataset(num_posts=300, mean_length=120, min_length=60,
                       max_length=300, seed=0, zipf_exponent=1.1):
    """Posts whose tokens all come from one shared Zipf distribution."""
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, _VOCAB + 1, dtype=np.float64)
    corpus_probs = ranks**-zipf_exponent
    corpus_probs /= corpus_probs.sum()
    sequences = []
    for post in range(num_posts):
        length = sample_length(mean_length, min_length, max_length, rng)
        tokens = rng.choice(_VOCAB, size=length, p=corpus_probs) + 1
        times = np.cumsum(rng.random(length))  # token positions as "times"
        sequences.append(
            EventSequence(
                seq_id=post,
                fields={"event_time": times, "token": tokens},
                label=None,
            )
        )
    return SequenceDataset(sequences, TEXTS_SCHEMA, name="texts").validate()
