"""Synthetic analogues of the five public datasets of Section 4.0.1.

Each ``make_*_dataset`` function mirrors one paper dataset:

- **age** — credit-card transactions, 4 balanced age groups, labels on a
  subset (paper: 30K of 50K clients labeled).
- **churn** — card transactions, binary churn, almost balanced (5K of 10K
  labeled); churners show decaying activity.
- **assessment** — children's gameplay events, 4 grades with shares
  0.50/0.24/0.14/0.12; events carry a code, an in-session counter and the
  time since session start.
- **retail** — purchase histories, 4 balanced age groups, labels known for
  *all* clients; purchases carry product level, segment, amount, value and
  loyalty points.
- **scoring** — credit-card transactions, binary default with a 2.76%
  positive rate (labels on ~65% of clients).

The class prototypes encode plausible behavioural differences (young
clients: more transport/entertainment, smaller amounts; defaulters: higher
volatility and more cash advances; and so on).  What matters for the
reproduction is not the story but the statistical structure: within-class
client mixtures are far closer to each other than across classes, and each
client's own mixture is stable along the sequence.
"""

from __future__ import annotations

import numpy as np

from ..schema import EventSchema
from ..sequences import EventSequence, SequenceDataset
from .base import ClassPrototype, markov_types, periodic_event_times, sample_length
from .transactions import generate_class_dataset

__all__ = [
    "make_age_dataset",
    "make_churn_dataset",
    "make_assessment_dataset",
    "make_retail_dataset",
    "make_scoring_dataset",
    "AGE_SCHEMA",
    "CHURN_SCHEMA",
    "ASSESSMENT_SCHEMA",
    "RETAIL_SCHEMA",
    "SCORING_SCHEMA",
]

# ---------------------------------------------------------------------------
# Age group prediction (4 classes, balanced)
# ---------------------------------------------------------------------------

_AGE_NUM_TYPES = 12
AGE_SCHEMA = EventSchema(
    categorical={"trx_type": _AGE_NUM_TYPES + 1},
    numerical=("amount",),
)


def _age_prototypes():
    """Four age groups with progressively shifting spending profiles."""
    base = np.ones(_AGE_NUM_TYPES)
    prototypes = []
    for group in range(4):
        affinity = base.copy()
        # Each group concentrates on a different band of transaction types.
        lo = group * 3
        affinity[lo:lo + 3] += 3.5
        # Neighbouring band bleeds in, so adjacent groups are confusable.
        affinity[(lo + 3) % _AGE_NUM_TYPES] += 2.0
        prototypes.append(
            ClassPrototype(
                type_affinity=tuple(affinity),
                concentration=10.0,
                rate_per_day=1.5 + 0.25 * group,
                amount_mu=2.6 + 0.25 * group,
                amount_sigma=0.7,
                # Part of the class signal lives in the *dynamics*: younger
                # groups burst (repeat the same transaction type), older
                # ones alternate.  Only contiguous views preserve this,
                # which is what separates the Table-2 strategies.
                persistence=0.60 - 0.15 * group,
                weekend_bias=0.5 - 0.1 * group,
            )
        )
    return prototypes


def make_age_dataset(num_clients=600, mean_length=90, min_length=30,
                     max_length=200, labeled_fraction=0.6, seed=0):
    """Synthetic analogue of the age-group competition dataset."""
    return generate_class_dataset(
        name="age",
        prototypes=_age_prototypes(),
        class_probs=[0.25, 0.25, 0.25, 0.25],
        num_clients=num_clients,
        schema=AGE_SCHEMA,
        type_field="trx_type",
        amount_field="amount",
        mean_length=mean_length,
        min_length=min_length,
        max_length=max_length,
        labeled_fraction=labeled_fraction,
        seed=seed,
    )


# ---------------------------------------------------------------------------
# Churn prediction (binary, almost balanced)
# ---------------------------------------------------------------------------

_CHURN_NUM_MCC = 16
CHURN_SCHEMA = EventSchema(
    categorical={"mcc": _CHURN_NUM_MCC + 1, "trx_type": 7},
    numerical=("amount",),
)


def _churn_prototypes():
    # Much of the churn signal lives in temporal *dynamics* (activity decay
    # and burstiness) that sequence-level aggregates cannot express — the
    # paper's motivation for learned embeddings over hand-crafted features.
    loyal = ClassPrototype(
        type_affinity=tuple(np.concatenate([np.full(8, 3.0), np.full(8, 2.0)])),
        concentration=7.0,
        rate_per_day=2.0,
        amount_mu=3.05,
        amount_sigma=0.8,
        persistence=0.5,
        weekend_bias=0.4,
        activity_trend=0.0,
    )
    churner = ClassPrototype(
        type_affinity=tuple(np.concatenate([np.full(8, 2.2), np.full(8, 2.8)])),
        concentration=7.0,
        rate_per_day=1.9,
        amount_mu=3.0,
        amount_sigma=0.85,
        persistence=0.2,
        weekend_bias=0.25,
        activity_trend=-0.02,  # activity decays towards churn
    )
    return [loyal, churner]


def make_churn_dataset(num_clients=400, mean_length=70, min_length=15,
                       max_length=150, labeled_fraction=0.5, seed=0):
    """Synthetic analogue of the churn competition dataset."""

    def extra_fields(rng, class_idx, types, times):
        # Six transaction types loosely coupled to the MCC band.
        trx_type = 1 + ((types - 1) // 3 + rng.integers(0, 2, size=len(types))) % 6
        return {"trx_type": trx_type}

    return generate_class_dataset(
        name="churn",
        prototypes=_churn_prototypes(),
        class_probs=[0.55, 0.45],
        num_clients=num_clients,
        schema=CHURN_SCHEMA,
        type_field="mcc",
        amount_field="amount",
        mean_length=mean_length,
        min_length=min_length,
        max_length=max_length,
        labeled_fraction=labeled_fraction,
        seed=seed,
        extra_fields=extra_fields,
    )


# ---------------------------------------------------------------------------
# Assessment prediction (4 grades, imbalanced 0.50/0.24/0.14/0.12)
# ---------------------------------------------------------------------------

_ASSESS_NUM_CODES = 20
_SUCCESS_CODES = np.arange(1, 6)  # codes signalling successful interactions
ASSESSMENT_SCHEMA = EventSchema(
    categorical={"event_code": _ASSESS_NUM_CODES + 1},
    numerical=("session_counter", "session_time"),
)


def make_assessment_dataset(num_clients=400, mean_length=120, min_length=100,
                            max_length=300, labeled_fraction=0.95, seed=0):
    """Synthetic analogue of the gameplay-assessment dataset.

    Children with higher grades trigger proportionally more "success" event
    codes and have shorter in-session times between events.
    """
    rng = np.random.default_rng(seed)
    grade_probs = np.array([0.50, 0.24, 0.14, 0.12])
    sequences = []
    for client in range(num_clients):
        grade = int(rng.choice(4, p=grade_probs))
        length = sample_length(mean_length, min_length, max_length, rng)
        # Grade shifts mass onto success codes.
        affinity = np.ones(_ASSESS_NUM_CODES)
        affinity[_SUCCESS_CODES - 1] += 0.9 * grade + 0.5
        affinity[10:] += 1.0 + 0.5 * (3 - grade)  # struggle codes
        mixture = rng.dirichlet(6.0 * affinity / affinity.sum())
        codes = markov_types(mixture, persistence=0.4, length=length, rng=rng)
        times = periodic_event_times(length, 40.0, 0.6, rng,
                                     start_day=float(rng.integers(0, 7)))
        # Sessions: boundary whenever the gap exceeds ~30 minutes.
        gaps = np.diff(times, prepend=times[0])
        new_session = gaps > (0.02 + 0.01 * rng.random())
        session_idx = np.cumsum(new_session)
        session_counter = np.zeros(length)
        session_time = np.zeros(length)
        for s in np.unique(session_idx):
            members = np.flatnonzero(session_idx == s)
            session_counter[members] = np.arange(len(members))
            session_time[members] = (times[members] - times[members[0]]) * 24 * 60
        session_time *= 1.0 + 0.25 * (3 - grade)  # slower play for low grades
        label = grade if rng.random() < labeled_fraction else None
        sequences.append(
            EventSequence(
                seq_id=client,
                fields={
                    "event_time": times,
                    "event_code": codes,
                    "session_counter": session_counter,
                    "session_time": session_time,
                },
                label=label,
            )
        )
    return SequenceDataset(sequences, ASSESSMENT_SCHEMA, name="assessment").validate()


# ---------------------------------------------------------------------------
# Retail purchase history (4 balanced age groups, fully labeled)
# ---------------------------------------------------------------------------

_RETAIL_NUM_LEVELS = 24
RETAIL_SCHEMA = EventSchema(
    categorical={"product_level": _RETAIL_NUM_LEVELS + 1, "segment": 9},
    numerical=("amount", "value", "points"),
)


def _retail_prototypes():
    prototypes = []
    for group in range(4):
        affinity = np.ones(_RETAIL_NUM_LEVELS)
        lo = group * 6
        affinity[lo:lo + 6] += 3.0
        affinity[(lo + 6) % _RETAIL_NUM_LEVELS] += 2.0
        prototypes.append(
            ClassPrototype(
                type_affinity=tuple(affinity),
                concentration=10.0,
                rate_per_day=0.8 + 0.15 * group,
                amount_mu=2.2 + 0.2 * group,
                amount_sigma=0.6,
                # Dynamics carry class signal (see _age_prototypes).
                persistence=0.15 + 0.15 * group,
                weekend_bias=0.7,
            )
        )
    return prototypes


def make_retail_dataset(num_clients=600, mean_length=80, min_length=30,
                        max_length=180, labeled_fraction=1.0, seed=0):
    """Synthetic analogue of the retail age-group dataset (all labeled)."""

    def extra_fields(rng, class_idx, types, times):
        segment = 1 + (types - 1) // 3  # coarse product segment, 8 values
        value = np.exp(rng.normal(1.0 + 0.2 * class_idx, 0.5, size=len(types)))
        points = np.round(value * (0.5 + 0.25 * class_idx) * rng.random(len(types)))
        return {"segment": segment, "value": value, "points": points}

    return generate_class_dataset(
        name="retail",
        prototypes=_retail_prototypes(),
        class_probs=[0.25, 0.25, 0.25, 0.25],
        num_clients=num_clients,
        schema=RETAIL_SCHEMA,
        type_field="product_level",
        amount_field="amount",
        mean_length=mean_length,
        min_length=min_length,
        max_length=max_length,
        labeled_fraction=labeled_fraction,
        seed=seed,
        extra_fields=extra_fields,
    )


# ---------------------------------------------------------------------------
# Credit scoring (binary default, 2.76% positives)
# ---------------------------------------------------------------------------

_SCORING_NUM_TYPES = 14
SCORING_SCHEMA = EventSchema(
    categorical={"trx_type": _SCORING_NUM_TYPES + 1},
    numerical=("amount",),
)


def _scoring_prototypes():
    regular = ClassPrototype(
        type_affinity=tuple(np.concatenate([np.full(10, 4.0), np.full(4, 0.5)])),
        concentration=30.0,
        rate_per_day=2.0,
        amount_mu=3.0,
        amount_sigma=0.6,
        persistence=0.3,
        weekend_bias=0.4,
    )
    defaulter = ClassPrototype(
        # Heavier use of the last 4 types (cash advances / late fees).
        type_affinity=tuple(np.concatenate([np.full(10, 2.0), np.full(4, 4.0)])),
        concentration=30.0,
        rate_per_day=2.4,
        amount_mu=3.3,
        amount_sigma=1.1,
        persistence=0.3,
        weekend_bias=0.2,
        activity_trend=0.01,  # escalating spend before default
    )
    return [regular, defaulter]


def make_scoring_dataset(num_clients=1500, mean_length=80, min_length=30,
                         max_length=200, labeled_fraction=0.65, seed=0,
                         default_rate=0.0276):
    """Synthetic analogue of the credit-default scoring dataset."""
    return generate_class_dataset(
        name="scoring",
        prototypes=_scoring_prototypes(),
        class_probs=[1.0 - default_rate, default_rate],
        num_clients=num_clients,
        schema=SCORING_SCHEMA,
        type_field="trx_type",
        amount_field="amount",
        mean_length=mean_length,
        min_length=min_length,
        max_length=max_length,
        labeled_fraction=labeled_fraction,
        seed=seed,
    )
