"""Synthetic analogues of the in-house commercial datasets (Section 4.3).

The paper evaluates CoLES on two proprietary worlds:

- **legal entities** — money transfers between companies (Table 9); the
  counterparty identifier encodes region/business type in its prefix, and
  the paper stresses that hand-crafting features over it is hard because
  the right grouping of receivers is unknown.
- **retail customers** — debit/credit card transactions (Table 8), where
  merchant type is an obvious and effective grouping key.

The generators reproduce that asymmetry.  Every company/client carries a
vector of latent factors (sector, size, stability, holding membership);
the factors shape both the generated transactions and a *dict* of label
channels, one per downstream task of Tables 10 and 11.  Use
:func:`with_label_channel` to project a multi-task dataset onto one task.

The legal-entity label signal flows mostly through *which counterparty
group* a company transacts with — recoverable by an embedding over
counterparty codes but invisible to aggregates that only group by currency
or transfer type (the realistic hand-crafted feature set, given that raw
counterparty ids are too high-cardinality to aggregate on).  The retail
signal flows mostly through merchant-type aggregates, which hand-crafted
features capture directly.
"""

from __future__ import annotations

import numpy as np

from ..schema import EventSchema
from ..sequences import EventSequence, SequenceDataset
from .base import lognormal_amounts, markov_types, periodic_event_times, sample_length

__all__ = [
    "make_legal_entities_dataset",
    "make_retail_customers_dataset",
    "with_label_channel",
    "holding_pairs",
    "LEGAL_SCHEMA",
    "RETAIL_CUSTOMER_SCHEMA",
    "LEGAL_TASKS",
    "RETAIL_CUSTOMER_TASKS",
]

_NUM_SECTORS = 5
_GROUPS_PER_SECTOR = 3
_NUM_COUNTERPARTY_GROUPS = _NUM_SECTORS * _GROUPS_PER_SECTOR
_COUNTERPARTIES_PER_GROUP = 10
_NUM_COUNTERPARTIES = _NUM_COUNTERPARTY_GROUPS * _COUNTERPARTIES_PER_GROUP

LEGAL_SCHEMA = EventSchema(
    categorical={
        "counterparty": _NUM_COUNTERPARTIES + 1,
        "currency": 4,
        "transfer_type": 26,
    },
    numerical=("amount",),
)

LEGAL_TASKS = (
    "insurance_lead",
    "credit_lead",
    "credit_scoring",
    "fraud",
)

RETAIL_CUSTOMER_SCHEMA = EventSchema(
    categorical={"merchant_type": 13, "currency": 4, "country": 7},
    numerical=("amount",),
)

RETAIL_CUSTOMER_TASKS = ("credit_scoring", "churn", "insurance_lead")


def _sigmoid(x):
    return 1.0 / (1.0 + np.exp(-x))


def make_legal_entities_dataset(num_companies=500, mean_length=80,
                                min_length=30, max_length=200, seed=0,
                                num_holdings=60, fraud_rate=0.08):
    """Generate the legal-entity world with per-company task labels.

    Every company's label is a dict with keys :data:`LEGAL_TASKS` plus
    ``holding`` (the holding id, used by the pair task of Table 10).
    """
    rng = np.random.default_rng(seed)
    sequences = []
    for company in range(num_companies):
        holding = int(rng.integers(0, num_holdings))
        # Deterministic per-holding stream (hash() is randomised per
        # process and must not be used for seeding).
        holding_rng = np.random.default_rng(
            (seed * 1_000_003 + holding * 7_919 + 17) % 2**32
        )
        sector = int(holding_rng.integers(0, _NUM_SECTORS))
        # Holding-level tilt: companies of one holding favour the same
        # counterparty groups within the sector (spiky Dirichlet so
        # holdings are mutually distinctive).
        holding_tilt = holding_rng.dirichlet(np.full(_GROUPS_PER_SECTOR, 0.8))

        size = rng.normal(0.0, 1.0)
        stability = rng.normal(0.0, 1.0)

        # Counterparty-group affinity: concentrated on the sector's groups,
        # tilted by the holding, with some cross-sector leakage.
        group_affinity = np.full(_NUM_COUNTERPARTY_GROUPS, 0.3)
        sector_groups = np.arange(
            sector * _GROUPS_PER_SECTOR, (sector + 1) * _GROUPS_PER_SECTOR
        )
        group_affinity[sector_groups] += 6.0 * holding_tilt + 1.0
        group_mixture = rng.dirichlet(45.0 * group_affinity / group_affinity.sum())

        length = sample_length(mean_length, min_length, max_length, rng)
        groups = markov_types(group_mixture, 0.35, length, rng) - 1  # 0-based
        within = rng.integers(0, _COUNTERPARTIES_PER_GROUP, size=length)
        counterparty = groups * _COUNTERPARTIES_PER_GROUP + within + 1

        currency = 1 + (rng.random(length) < 0.2 * (1 + 0.3 * size)).astype(int)
        currency = np.minimum(currency + (rng.random(length) < 0.05), 3)
        transfer_type = markov_types(
            rng.dirichlet(np.full(25, 1.0 + 0.5 * (sector + 1))), 0.3, length, rng
        )
        times = periodic_event_times(length, 1.5 + 0.5 * abs(size), 0.1, rng,
                                     start_day=float(rng.integers(0, 7)))
        amounts = lognormal_amounts(
            counterparty, 6.0 + 0.8 * size, 0.9 + 0.3 * abs(stability), rng
        )

        # Fraud: a burst of transfers to out-of-sector counterparties.
        is_fraud = rng.random() < fraud_rate
        if is_fraud:
            n_bad = max(3, length // 10)
            idx = rng.choice(length, size=n_bad, replace=False)
            other = np.setdiff1d(np.arange(_NUM_COUNTERPARTY_GROUPS), sector_groups)
            bad_groups = rng.choice(other, size=n_bad)
            counterparty[idx] = (
                bad_groups * _COUNTERPARTIES_PER_GROUP
                + rng.integers(0, _COUNTERPARTIES_PER_GROUP, n_bad) + 1
            )
            amounts[idx] *= np.exp(rng.normal(2.0, 0.3, n_bad))

        noise = rng.normal(0.0, 0.6, size=4)
        sector_centered = sector - (_NUM_SECTORS - 1) / 2.0
        labels = {
            # Interest in corporate medical insurance: larger companies in
            # "people-heavy" sectors.
            "insurance_lead": int(_sigmoid(1.2 * size + 0.8 * sector_centered + noise[0]) > 0.5),
            # Credit appetite: growing (large) but unstable companies.
            "credit_lead": int(_sigmoid(0.9 * size + 0.9 * stability + noise[1]) > 0.5),
            # Default probability: instability dominates.
            "credit_scoring": int(_sigmoid(1.4 * stability - 0.6 * size + noise[2] - 1.0) > 0.5),
            "fraud": int(is_fraud),
            "holding": holding,
            "sector": sector,
        }
        sequences.append(
            EventSequence(
                seq_id=company,
                fields={
                    "event_time": times,
                    "counterparty": counterparty,
                    "currency": currency,
                    "transfer_type": transfer_type,
                    "amount": amounts,
                },
                label=labels,
            )
        )
    return SequenceDataset(sequences, LEGAL_SCHEMA, name="legal_entities").validate()


def make_retail_customers_dataset(num_clients=500, mean_length=100,
                                  min_length=40, max_length=250, seed=0):
    """Generate the retail-customer world with per-client task labels."""
    rng = np.random.default_rng(seed)
    num_merchants = 12
    sequences = []
    for client in range(num_clients):
        affluence = rng.normal(0.0, 1.0)
        discipline = rng.normal(0.0, 1.0)
        engagement = rng.normal(0.0, 1.0)

        # Merchant mixture driven by affluence: luxury vs essentials bands.
        affinity = np.ones(num_merchants)
        affinity[:4] += 3.0 * _sigmoid(-affluence)       # essentials
        affinity[4:8] += 3.0 * _sigmoid(affluence)       # lifestyle
        affinity[8:] += 2.0 * _sigmoid(affluence - 1.0)  # luxury/travel
        mixture = rng.dirichlet(20.0 * affinity / affinity.sum())

        length = sample_length(mean_length, min_length, max_length, rng)
        merchant = markov_types(mixture, 0.3, length, rng)
        country = np.where(
            rng.random(length) < 0.08 * _sigmoid(affluence) * 3.0,
            rng.integers(2, 7, size=length),
            1,
        )
        currency = np.where(country > 1, rng.integers(2, 4, size=length), 1)
        times = periodic_event_times(
            length,
            1.5 + 0.6 * _sigmoid(engagement) * 2.0,
            0.5,
            rng,
            start_day=float(rng.integers(0, 7)),
            activity_trend=-0.01 * _sigmoid(-engagement) * 2.0,
        )
        amounts = lognormal_amounts(merchant, 3.0 + 0.6 * affluence,
                                    0.6 + 0.3 * _sigmoid(-discipline), rng)

        noise = rng.normal(0.0, 0.6, size=3)
        labels = {
            "credit_scoring": int(_sigmoid(-1.3 * discipline - 0.4 * affluence + noise[0] - 0.8) > 0.5),
            "churn": int(_sigmoid(-1.4 * engagement + noise[1]) > 0.5),
            "insurance_lead": int(_sigmoid(1.1 * affluence + 0.5 * discipline + noise[2]) > 0.5),
        }
        sequences.append(
            EventSequence(
                seq_id=client,
                fields={
                    "event_time": times,
                    "merchant_type": merchant,
                    "currency": currency,
                    "country": country,
                    "amount": amounts,
                },
                label=labels,
            )
        )
    return SequenceDataset(
        sequences, RETAIL_CUSTOMER_SCHEMA, name="retail_customers"
    ).validate()


def with_label_channel(dataset, channel):
    """Project a multi-task dataset onto one task's binary label."""
    sequences = []
    for seq in dataset:
        label = None if seq.label is None else seq.label[channel]
        sequences.append(EventSequence(seq.seq_id, seq.fields, label=label))
    return SequenceDataset(
        sequences, dataset.schema, name="%s:%s" % (dataset.name, channel)
    )


def holding_pairs(dataset, num_pairs, seed=0):
    """Sample company pairs for the holding-structure-restoration task.

    Returns ``(pairs, labels)`` where pairs is an ``(N, 2)`` array of
    positions in ``dataset`` and labels mark same-holding pairs.  Positive
    pairs are oversampled to roughly balance the task, as in record-linkage
    training sets.
    """
    rng = np.random.default_rng(seed)
    holdings = np.array([seq.label["holding"] for seq in dataset])
    by_holding = {}
    for position, holding in enumerate(holdings):
        by_holding.setdefault(holding, []).append(position)
    multi = [members for members in by_holding.values() if len(members) >= 2]
    if not multi:
        raise ValueError("no holding has two companies; increase dataset size")
    pairs = []
    labels = []
    for _ in range(num_pairs // 2):
        members = multi[rng.integers(0, len(multi))]
        a, b = rng.choice(members, size=2, replace=False)
        pairs.append((a, b))
        labels.append(1)
    for _ in range(num_pairs - num_pairs // 2):
        a, b = rng.integers(0, len(dataset), size=2)
        while holdings[a] == holdings[b]:
            a, b = rng.integers(0, len(dataset), size=2)
        pairs.append((a, b))
        labels.append(0)
    return np.array(pairs), np.array(labels)
