"""Synthetic event-sequence worlds replacing the paper's datasets."""

from .base import (
    ClassPrototype,
    lognormal_amounts,
    markov_types,
    periodic_event_times,
    sample_length,
    sample_type_mixture,
)
from .commercial import (
    LEGAL_SCHEMA,
    LEGAL_TASKS,
    RETAIL_CUSTOMER_SCHEMA,
    RETAIL_CUSTOMER_TASKS,
    holding_pairs,
    make_legal_entities_dataset,
    make_retail_customers_dataset,
    with_label_channel,
)
from .public import (
    AGE_SCHEMA,
    ASSESSMENT_SCHEMA,
    CHURN_SCHEMA,
    RETAIL_SCHEMA,
    SCORING_SCHEMA,
    make_age_dataset,
    make_assessment_dataset,
    make_churn_dataset,
    make_retail_dataset,
    make_scoring_dataset,
)
from .stress import (STRESS_SCHEMA, make_stress_history,
                     make_stress_stream)
from .texts import TEXTS_SCHEMA, make_texts_dataset
from .transactions import generate_class_dataset

__all__ = [
    "ClassPrototype",
    "sample_type_mixture",
    "markov_types",
    "periodic_event_times",
    "lognormal_amounts",
    "sample_length",
    "generate_class_dataset",
    "make_age_dataset",
    "make_churn_dataset",
    "make_assessment_dataset",
    "make_retail_dataset",
    "make_scoring_dataset",
    "make_legal_entities_dataset",
    "make_retail_customers_dataset",
    "with_label_channel",
    "holding_pairs",
    "make_texts_dataset",
    "make_stress_history",
    "make_stress_stream",
    "STRESS_SCHEMA",
    "AGE_SCHEMA",
    "CHURN_SCHEMA",
    "ASSESSMENT_SCHEMA",
    "RETAIL_SCHEMA",
    "SCORING_SCHEMA",
    "LEGAL_SCHEMA",
    "LEGAL_TASKS",
    "RETAIL_CUSTOMER_SCHEMA",
    "RETAIL_CUSTOMER_TASKS",
    "TEXTS_SCHEMA",
]
