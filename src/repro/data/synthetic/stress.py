"""Vectorized million-entity stress workloads for serving SLO benchmarks.

The class-conditioned generators (:mod:`.transactions`) build rich
per-client Markov structure in a python loop — fine at benchmark scale
(thousands of clients), far too slow at the ROADMAP's million-entity
scale point.  This module trades structure for scale: types, amounts
and inter-event gaps for *all* entities are drawn in O(total events)
numpy calls, and per-entity event times come from one segmented
cumulative sum, so generating a million short histories takes seconds.
The schema matches the churn shape (13 transaction types + an amount),
so any churn-style encoder serves the stress world unchanged.

Two pieces compose the workload of ``benchmarks/test_bench_serving.py``:

- :func:`make_stress_history` — the day-0 bulk-load dataset (entity ids
  are plain ints ``0..num_entities-1``);
- :func:`make_stress_stream` — post-load event chunks for a random
  subset of entities, times continuing strictly after each entity's
  history, interleaved in global arrival order — a valid input for both
  ``EmbeddingService.ingest`` and ``AsyncIngestPipeline.submit``.
"""

from __future__ import annotations

import numpy as np

from ..schema import EventSchema
from ..sequences import EventSequence, SequenceDataset

__all__ = ["STRESS_SCHEMA", "make_stress_history", "make_stress_stream"]

#: Churn-shaped schema of the stress world: 12 real transaction types
#: (codes 1..12; 13 includes the reserved padding code 0) + an amount.
STRESS_SCHEMA = EventSchema(categorical={"trx_type": 13},
                            numerical=("amount",))


def _segmented_times(lengths, gaps, starts_at):
    """Per-segment cumulative event times from flat inter-event gaps.

    ``lengths`` (``(S,)`` ints) split the flat ``gaps`` array (``(sum,)``
    floats) into segments; segment ``s`` starts at ``starts_at[s]`` and
    each event lands one gap after the previous.  One global ``cumsum``
    plus a per-segment offset subtraction — no python loop.  Returns the
    flat ``(sum,)`` float64 time array.
    """
    firsts = np.concatenate((np.zeros(1, dtype=np.int64),
                             np.cumsum(lengths[:-1], dtype=np.int64)))
    totals = np.cumsum(gaps)
    # Rebase each segment: subtract the cumsum just *before* its first
    # gap, so segment times become the within-segment gap cumsum.
    bases = totals[firsts] - gaps[firsts]
    return np.repeat(starts_at - bases, lengths) + totals


def make_stress_history(num_entities, min_events=1, max_events=3,
                        mean_gap=0.5, seed=0):
    """Day-0 histories: ``num_entities`` short sequences, fully vectorized.

    Each entity gets ``min_events..max_events`` events (uniform); event
    times start at a per-entity uniform day in ``[0, 30)`` and advance
    by exponential gaps of mean ``mean_gap`` days; amounts are
    log-normal, types uniform over ``1..12``.  Returns a
    :class:`~repro.data.SequenceDataset` over :data:`STRESS_SCHEMA`
    whose entity ids are the ints ``0..num_entities-1``.
    """
    if num_entities < 1:
        raise ValueError("num_entities must be >= 1")
    if not 1 <= min_events <= max_events:
        raise ValueError("need 1 <= min_events <= max_events")
    rng = np.random.default_rng(seed)
    lengths = rng.integers(min_events, max_events + 1, size=num_entities)
    total = int(lengths.sum())
    types = rng.integers(1, 13, size=total, dtype=np.int64)
    amounts = np.exp(rng.normal(3.0, 1.0, size=total))
    gaps = rng.exponential(mean_gap, size=total)
    starts_at = rng.uniform(0.0, 30.0, size=num_entities)
    times = _segmented_times(lengths, gaps, starts_at)
    bounds = np.concatenate((np.zeros(1, dtype=np.int64),
                             np.cumsum(lengths, dtype=np.int64)))
    sequences = [
        EventSequence(
            seq_id=entity,
            fields={"trx_type": types[bounds[entity]:bounds[entity + 1]],
                    "amount": amounts[bounds[entity]:bounds[entity + 1]],
                    "event_time": times[bounds[entity]:bounds[entity + 1]]},
            label=None,
        )
        for entity in range(num_entities)
    ]
    return SequenceDataset(sequences, STRESS_SCHEMA, name="stress")


def make_stress_stream(history, num_active, chunks_per_entity=2,
                       min_events=2, max_events=6, mean_gap=0.25, seed=1):
    """Post-load event chunks for a random subset of ``history`` entities.

    ``num_active`` entities are sampled without replacement; each gets
    ``chunks_per_entity`` chunks of ``min_events..max_events`` events
    whose times continue strictly after the entity's last history event
    (the incremental store's append-only contract).  The returned list
    of :class:`~repro.data.EventSequence` chunks is sorted by each
    chunk's first event time — a realistic global arrival order that
    still preserves every entity's own chunk order.
    """
    if not 1 <= num_active <= len(history):
        raise ValueError("num_active must be in [1, len(history)]")
    if not 1 <= min_events <= max_events:
        raise ValueError("need 1 <= min_events <= max_events")
    rng = np.random.default_rng(seed)
    time_field = history.schema.time_field
    active = rng.choice(len(history), size=num_active, replace=False)
    last_times = np.asarray(
        [history[int(entity)].fields[time_field][-1] for entity in active],
        dtype=np.float64,
    )
    num_chunks = num_active * int(chunks_per_entity)
    lengths = rng.integers(min_events, max_events + 1, size=num_chunks)
    total = int(lengths.sum())
    types = rng.integers(1, 13, size=total, dtype=np.int64)
    amounts = np.exp(rng.normal(3.0, 1.0, size=total))
    gaps = rng.exponential(mean_gap, size=total)
    # Chunks lay out entity-major: entity e owns chunks
    # [e * chunks_per_entity, (e + 1) * chunks_per_entity).  One
    # segmented cumsum over *entities* (concatenating their chunks)
    # makes each chunk continue where the previous one ended.
    per_entity = lengths.reshape(num_active, chunks_per_entity)
    entity_lengths = per_entity.sum(axis=1)
    times = _segmented_times(entity_lengths, gaps, last_times)
    bounds = np.concatenate((np.zeros(1, dtype=np.int64),
                             np.cumsum(lengths, dtype=np.int64)))
    chunks = [
        EventSequence(
            seq_id=int(active[index // chunks_per_entity]),
            fields={"trx_type": types[bounds[index]:bounds[index + 1]],
                    "amount": amounts[bounds[index]:bounds[index + 1]],
                    "event_time": times[bounds[index]:bounds[index + 1]]},
            label=None,
        )
        for index in range(num_chunks)
    ]
    # A stable sort on first event time preserves per-entity chunk order
    # (an entity's later chunk always starts later by construction).
    chunks.sort(key=lambda chunk: float(chunk.fields[time_field][0]))
    return chunks
