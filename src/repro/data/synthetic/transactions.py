"""Generic generator for card-transaction-style datasets.

The four public transaction datasets of the paper (age, churn, retail,
scoring) share one structure: a client belongs to a latent class, the class
shapes a personal event-type mixture, amounts and activity profile, and a
(possibly hidden) label is the class itself or a function of it.  This
module provides that shared machinery; the dataset modules configure it.
"""

from __future__ import annotations

import numpy as np

from ..sequences import EventSequence, SequenceDataset
from .base import (
    lognormal_amounts,
    markov_types,
    periodic_event_times,
    sample_length,
    sample_type_mixture,
)

__all__ = ["generate_class_dataset"]


def generate_class_dataset(
    name,
    prototypes,
    class_probs,
    num_clients,
    schema,
    type_field,
    amount_field,
    mean_length,
    min_length,
    max_length,
    labeled_fraction,
    seed,
    extra_fields=None,
    type_offsets=None,
):
    """Generate a labeled-class transaction dataset.

    Parameters
    ----------
    prototypes:
        One :class:`ClassPrototype` per class; class index is the label.
    class_probs:
        Class prior probabilities.
    schema:
        Dataset schema; must contain ``type_field`` (categorical) and
        ``amount_field`` (numerical).
    extra_fields:
        Optional callable ``(rng, class_idx, types, times) -> dict`` adding
        dataset-specific fields.
    type_offsets:
        Optional per-type log-amount offsets (index by 1-based type code).
    labeled_fraction:
        Probability that a client keeps its label (the rest are unlabeled,
        matching the partially-labeled public datasets).

    Returns
    -------
    :class:`SequenceDataset` with labels present on a random subset.
    """
    class_probs = np.asarray(class_probs, dtype=np.float64)
    if len(class_probs) != len(prototypes):
        raise ValueError("class_probs and prototypes length mismatch")
    if not np.isclose(class_probs.sum(), 1.0):
        raise ValueError("class_probs must sum to 1")
    rng = np.random.default_rng(seed)
    sequences = []
    for client in range(num_clients):
        class_idx = int(rng.choice(len(prototypes), p=class_probs))
        proto = prototypes[class_idx]
        mixture = sample_type_mixture(proto, rng)
        length = sample_length(mean_length, min_length, max_length, rng)
        types = markov_types(mixture, proto.persistence, length, rng)
        times = periodic_event_times(
            length,
            proto.rate_per_day,
            proto.weekend_bias,
            rng,
            start_day=float(rng.integers(0, 7)),
            activity_trend=proto.activity_trend,
        )
        amount_mu = proto.amount_mu + rng.normal(0.0, 0.2)
        amounts = lognormal_amounts(
            types, amount_mu, proto.amount_sigma, rng, type_offsets=type_offsets
        )
        fields = {
            schema.time_field: times,
            type_field: types,
            amount_field: amounts,
        }
        if extra_fields is not None:
            fields.update(extra_fields(rng, class_idx, types, times))
        label = class_idx if rng.random() < labeled_fraction else None
        sequences.append(EventSequence(seq_id=client, fields=fields, label=label))
    return SequenceDataset(sequences, schema, name=name).validate()
