"""Latent-process primitives for the synthetic event-sequence worlds.

The paper's public datasets (anonymised card transactions, gameplay logs,
retail purchases) are unavailable offline, so each is replaced by a
generator built from the primitives in this module.  The generators
manufacture exactly the property the paper's method relies on
(Section 3.2): each entity is a latent stochastic process whose
realisations exhibit *repeatability* (a stable, client-specific event-type
distribution) and *periodicity* (weekly arrival-intensity modulation),
while different entities differ.

Primitives
----------
- :func:`sample_type_mixture` — client-specific categorical distribution
  over event types, drawn around a class prototype (Dirichlet).
- :func:`markov_types` — event types from a sticky Markov chain; the
  stickiness creates local bursts that only *contiguous* slices preserve,
  which is what separates the Table-2 augmentation strategies.
- :func:`periodic_event_times` — arrival times with a weekly intensity
  profile.
- :func:`lognormal_amounts` — transaction amounts conditioned on type.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "ClassPrototype",
    "sample_type_mixture",
    "markov_types",
    "periodic_event_times",
    "lognormal_amounts",
    "sample_length",
]


@dataclass(frozen=True)
class ClassPrototype:
    """Parameters of one latent class (e.g. one age group).

    Attributes
    ----------
    type_affinity:
        Unnormalised preference weights over event types; the client's own
        type distribution is Dirichlet-drawn around this.
    concentration:
        Dirichlet sharpness — higher values put clients closer to the
        prototype (less within-class variation).
    rate_per_day:
        Mean number of events per day.
    amount_mu / amount_sigma:
        Log-scale location/scale of the amount distribution.
    persistence:
        Markov self-transition weight in [0, 1): probability mass of
        repeating the previous event type (burstiness).
    weekend_bias:
        Multiplicative weekend intensity change (e.g. +0.5 = 50% more
        weekend activity).
    activity_trend:
        Per-day multiplicative drift of the event rate; negative values
        model churn-like decay.
    """

    type_affinity: tuple
    concentration: float = 30.0
    rate_per_day: float = 2.0
    amount_mu: float = 3.0
    amount_sigma: float = 0.8
    persistence: float = 0.3
    weekend_bias: float = 0.3
    activity_trend: float = 0.0

    def __post_init__(self):
        affinity = np.asarray(self.type_affinity, dtype=np.float64)
        if (affinity <= 0).any():
            raise ValueError("type_affinity must be strictly positive")
        if not 0.0 <= self.persistence < 1.0:
            raise ValueError("persistence must be in [0, 1)")
        object.__setattr__(self, "type_affinity", tuple(affinity))

    @property
    def num_types(self):
        return len(self.type_affinity)


def sample_type_mixture(prototype, rng):
    """Draw a client's personal event-type distribution.

    ``p ~ Dirichlet(concentration * normalised_affinity)`` — the latent
    "essence" of the entity that CoLES embeddings should recover.
    """
    affinity = np.asarray(prototype.type_affinity)
    alpha = prototype.concentration * affinity / affinity.sum()
    return rng.dirichlet(alpha)


def markov_types(mixture, persistence, length, rng):
    """Event-type codes (1-based) from a sticky Markov chain.

    Each step repeats the previous type with probability ``persistence``
    and otherwise samples fresh from the client ``mixture``.  The
    stationary distribution is exactly ``mixture`` while successive events
    are positively correlated — the "interleaved periodic sub-streams"
    structure of transactional data described in the paper's introduction.
    """
    if length < 1:
        raise ValueError("length must be >= 1")
    num_types = len(mixture)
    fresh = rng.choice(num_types, size=length, p=mixture)
    repeat = rng.random(length) < persistence
    types = np.empty(length, dtype=np.int64)
    types[0] = fresh[0]
    for i in range(1, length):
        types[i] = types[i - 1] if repeat[i] else fresh[i]
    return types + 1  # shift: code 0 is padding


def periodic_event_times(length, rate_per_day, weekend_bias, rng,
                         start_day=0.0, activity_trend=0.0):
    """Ordered event times (in days) with weekly periodicity.

    Inter-arrival gaps are exponential with an intensity modulated by a
    weekend factor and an optional exponential trend (churn decay).
    """
    if rate_per_day <= 0:
        raise ValueError("rate_per_day must be positive")
    times = np.empty(length, dtype=np.float64)
    current = float(start_day)
    for i in range(length):
        day_of_week = current % 7.0
        weekend = 1.0 + weekend_bias * (day_of_week >= 5.0)
        trend = np.exp(activity_trend * (current - start_day))
        intensity = max(rate_per_day * weekend * trend, 1e-6)
        current += rng.exponential(1.0 / intensity)
        times[i] = current
    return times


def lognormal_amounts(types, mu, sigma, rng, type_offsets=None):
    """Amounts conditioned on event type: ``exp(N(mu + offset[type], sigma))``."""
    types = np.asarray(types)
    offsets = np.zeros(types.max() + 1) if type_offsets is None else np.asarray(type_offsets)
    location = mu + offsets[types]
    return np.exp(rng.normal(location, sigma))


def sample_length(mean_length, min_length, max_length, rng):
    """Sequence length: Poisson around the mean, clipped to the range."""
    length = int(rng.poisson(mean_length))
    return int(np.clip(length, min_length, max_length))
