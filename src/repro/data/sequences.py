"""Event sequences and datasets.

An :class:`EventSequence` is one entity's observed lifetime activity
``{x_e(t)}`` (Section 3.1 of the paper): parallel arrays of event fields,
ordered by event time.  A :class:`SequenceDataset` is a collection of
sequences sharing a schema, with optional labels on a subset of entities
(the paper's datasets are partially labeled).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .schema import EventSchema

__all__ = ["EventSequence", "SequenceDataset"]


@dataclass
class EventSequence:
    """One entity's ordered event stream.

    Parameters
    ----------
    seq_id:
        Entity identifier (stable across slices of the same entity).
    fields:
        Mapping field name -> array of per-event values, all equal length,
        sorted by the schema's time field.
    label:
        Optional downstream target; None when the entity is unlabeled.
    """

    seq_id: int
    fields: dict
    label: object = None

    def __post_init__(self):
        self.fields = {name: np.asarray(values) for name, values in self.fields.items()}
        lengths = {len(values) for values in self.fields.values()}
        if len(lengths) > 1:
            raise ValueError("field arrays have differing lengths: %s" % lengths)

    def __len__(self):
        if not self.fields:
            return 0
        return len(next(iter(self.fields.values())))

    @property
    def is_labeled(self):
        return self.label is not None

    def slice(self, start, stop):
        """Contiguous sub-sequence [start, stop) keeping id and label."""
        if not 0 <= start <= stop <= len(self):
            raise IndexError(
                "slice [%d, %d) out of bounds for length %d" % (start, stop, len(self))
            )
        return EventSequence(
            seq_id=self.seq_id,
            fields={name: values[start:stop] for name, values in self.fields.items()},
            label=self.label,
        )

    def take(self, indices):
        """Non-contiguous sub-sequence given sorted positional indices."""
        indices = np.asarray(indices)
        return EventSequence(
            seq_id=self.seq_id,
            fields={name: values[indices] for name, values in self.fields.items()},
            label=self.label,
        )


class SequenceDataset:
    """A list of :class:`EventSequence` plus the shared :class:`EventSchema`."""

    def __init__(self, sequences, schema, name="dataset"):
        self.sequences = list(sequences)
        self.schema = schema
        self.name = name

    def __len__(self):
        return len(self.sequences)

    def __getitem__(self, index):
        if isinstance(index, (list, np.ndarray)):
            return SequenceDataset(
                [self.sequences[i] for i in index], self.schema, self.name
            )
        return self.sequences[index]

    def __iter__(self):
        return iter(self.sequences)

    def validate(self):
        """Check every sequence against the schema; returns self."""
        for seq in self.sequences:
            self.schema.validate_sequence(seq.fields, len(seq))
        return self

    # ------------------------------------------------------------------
    @property
    def labels(self):
        """Array of labels with None for unlabeled entities."""
        return np.array([seq.label for seq in self.sequences], dtype=object)

    def labeled(self):
        """Subset of sequences with a known target."""
        return SequenceDataset(
            [seq for seq in self.sequences if seq.is_labeled],
            self.schema,
            self.name + ":labeled",
        )

    def unlabeled(self):
        return SequenceDataset(
            [seq for seq in self.sequences if not seq.is_labeled],
            self.schema,
            self.name + ":unlabeled",
        )

    def label_array(self):
        """Integer label array; raises if any sequence is unlabeled."""
        labels = []
        for seq in self.sequences:
            if not seq.is_labeled:
                raise ValueError("sequence %d is unlabeled" % seq.seq_id)
            labels.append(seq.label)
        return np.asarray(labels)

    def lengths(self):
        return np.array([len(seq) for seq in self.sequences])

    def summary(self):
        """Human-readable dataset statistics."""
        lengths = self.lengths()
        labeled = sum(seq.is_labeled for seq in self.sequences)
        return (
            "%s: %d sequences (%d labeled), %d events, "
            "length min/median/max = %d/%d/%d"
            % (
                self.name,
                len(self),
                labeled,
                int(lengths.sum()),
                lengths.min() if len(lengths) else 0,
                int(np.median(lengths)) if len(lengths) else 0,
                lengths.max() if len(lengths) else 0,
            )
        )
