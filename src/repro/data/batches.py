"""Padded batches: the tensor form of a list of event sequences.

Sequences of different lengths are right-padded to the batch maximum.
Categorical fields pad with the reserved code 0, numerical fields with 0.0,
and a boolean mask marks real events.  All downstream modules (encoders,
losses, baselines) consume this structure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .schema import PADDING_CODE

__all__ = ["PaddedBatch", "collate", "iterate_batches"]


@dataclass
class PaddedBatch:
    """A batch of padded sequences.

    Attributes
    ----------
    fields:
        Mapping field name -> array of shape ``(B, T)``.
    lengths:
        True sequence lengths, shape ``(B,)``.
    seq_ids:
        Entity ids, shape ``(B,)`` — used to build positive pairs.
    labels:
        Object array of labels (None where unlabeled).
    """

    fields: dict
    lengths: np.ndarray
    seq_ids: np.ndarray
    labels: np.ndarray
    schema: object = None  # the EventSchema the batch was collated under

    @property
    def batch_size(self):
        return len(self.lengths)

    @property
    def max_length(self):
        return 0 if not self.fields else next(iter(self.fields.values())).shape[1]

    @property
    def mask(self):
        """Boolean ``(B, T)``: True at real (non-padded) positions."""
        steps = np.arange(self.max_length)
        return steps[None, :] < self.lengths[:, None]

    def label_array(self):
        if any(label is None for label in self.labels):
            raise ValueError("batch contains unlabeled sequences")
        return np.asarray(self.labels.tolist())


def collate(sequences, schema):
    """Stack a list of :class:`EventSequence` into a :class:`PaddedBatch`."""
    if not sequences:
        raise ValueError("cannot collate an empty list of sequences")
    lengths = np.array([len(seq) for seq in sequences])
    if lengths.min() < 1:
        raise ValueError("cannot collate empty sequences")
    max_len = int(lengths.max())
    batch_fields = {}
    for name in schema.field_names:
        if name in schema.categorical:
            padded = np.full((len(sequences), max_len), PADDING_CODE, dtype=np.int64)
        else:
            padded = np.zeros((len(sequences), max_len), dtype=np.float64)
        for row, seq in enumerate(sequences):
            padded[row, : lengths[row]] = seq.fields[name]
        batch_fields[name] = padded
    return PaddedBatch(
        fields=batch_fields,
        lengths=lengths,
        seq_ids=np.array([seq.seq_id for seq in sequences]),
        labels=np.array([seq.label for seq in sequences], dtype=object),
        schema=schema,
    )


def iterate_batches(sequences, schema, batch_size, rng=None, shuffle=True,
                    drop_last=False, bucket_window=None):
    """Yield :class:`PaddedBatch` objects over ``sequences``.

    Shuffles between epochs when ``rng`` is given; the generator covers one
    epoch per call.  ``bucket_window`` (in batches) enables the
    length-bucketed planner of :mod:`repro.data.bucketing`: sequences are
    sorted by length within each shuffle window so batches pad far less.
    """
    if bucket_window is not None:
        from .bucketing import iterate_bucketed_batches

        yield from iterate_bucketed_batches(
            sequences, schema, batch_size, rng=rng, shuffle=shuffle,
            window_batches=bucket_window, drop_last=drop_last,
        )
        return
    order = np.arange(len(sequences))
    if shuffle:
        rng = rng or np.random.default_rng()
        rng.shuffle(order)
    for start in range(0, len(order), batch_size):
        chunk = order[start:start + batch_size]
        if drop_last and len(chunk) < batch_size:
            break
        yield collate([sequences[i] for i in chunk], schema)
