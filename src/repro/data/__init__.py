"""Event-sequence data layer: schemas, sequences, batches, splits, worlds."""

from . import synthetic
from .batches import PaddedBatch, collate, iterate_batches
from .bucketing import (
    bucketed_order,
    iterate_bucketed_batches,
    padded_step_fraction,
    plan_batches,
)
from .schema import PADDING_CODE, EventSchema
from .sequences import EventSequence, SequenceDataset
from .split import stratified_kfold, subsample_labels, train_test_split

__all__ = [
    "EventSchema",
    "PADDING_CODE",
    "EventSequence",
    "SequenceDataset",
    "PaddedBatch",
    "collate",
    "iterate_batches",
    "plan_batches",
    "bucketed_order",
    "iterate_bucketed_batches",
    "padded_step_fraction",
    "train_test_split",
    "stratified_kfold",
    "subsample_labels",
    "synthetic",
]
