"""Event schemas: which fields a dataset's events carry.

The paper's events "consist of several categorical and numerical fields"
(Section 2).  A schema declares those fields once per dataset so encoders,
feature generators and augmentations can be built generically.

Categorical fields use integer codes in ``[1, cardinality)``; the code ``0``
is reserved for padding in batched tensors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["EventSchema", "PADDING_CODE"]

PADDING_CODE = 0


@dataclass(frozen=True)
class EventSchema:
    """Declares the structure of one event.

    Parameters
    ----------
    categorical:
        Mapping field name -> cardinality (number of codes *including* the
        reserved padding code 0, so real values are ``1..cardinality-1``).
    numerical:
        Names of real-valued fields (e.g. ``amount``).
    time_field:
        Name of the event-time field (float days since epoch); always
        present in addition to the declared fields.
    """

    categorical: dict = field(default_factory=dict)
    numerical: tuple = ()
    time_field: str = "event_time"

    def __post_init__(self):
        object.__setattr__(self, "numerical", tuple(self.numerical))
        overlap = set(self.categorical) & set(self.numerical)
        if overlap:
            raise ValueError("fields declared both categorical and numerical: %s" % overlap)
        if self.time_field in self.categorical or self.time_field in self.numerical:
            raise ValueError("time field %r must not be declared twice" % self.time_field)
        for name, cardinality in self.categorical.items():
            if cardinality < 2:
                raise ValueError(
                    "categorical field %r needs cardinality >= 2 (got %d)"
                    % (name, cardinality)
                )

    @property
    def field_names(self):
        """All event fields, time first, then categorical, then numerical."""
        return (self.time_field,) + tuple(self.categorical) + self.numerical

    def validate_sequence(self, fields, length):
        """Check a dict of per-event arrays against this schema."""
        for name in self.field_names:
            if name not in fields:
                raise KeyError("sequence is missing field %r" % name)
            if len(fields[name]) != length:
                raise ValueError(
                    "field %r has length %d, expected %d"
                    % (name, len(fields[name]), length)
                )
        for name, cardinality in self.categorical.items():
            values = fields[name]
            if len(values) and (values.min() < 1 or values.max() >= cardinality):
                raise ValueError(
                    "categorical field %r out of range [1, %d)" % (name, cardinality)
                )
