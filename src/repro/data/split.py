"""Dataset splitting: held-out test sets and stratified k-fold CV.

The paper's protocol (Section 4.0.3): 10% of labeled entities form the test
set; the remaining labeled + all unlabeled entities form the training set;
hyper-parameters are selected by 5-fold CV on the training set.
"""

from __future__ import annotations

import numpy as np

from .sequences import SequenceDataset

__all__ = ["train_test_split", "stratified_kfold", "subsample_labels"]


def train_test_split(dataset, test_fraction=0.1, seed=0):
    """Split per the paper: test drawn only from *labeled* entities.

    Returns ``(train, test)`` where ``train`` keeps all unlabeled sequences.
    """
    rng = np.random.default_rng(seed)
    labeled_idx = [i for i, seq in enumerate(dataset) if seq.is_labeled]
    unlabeled_idx = [i for i, seq in enumerate(dataset) if not seq.is_labeled]
    labeled_idx = np.array(labeled_idx)
    rng.shuffle(labeled_idx)
    n_test = max(1, int(round(test_fraction * len(labeled_idx))))
    test_idx = labeled_idx[:n_test]
    train_idx = np.concatenate([labeled_idx[n_test:], np.array(unlabeled_idx, dtype=int)])
    train = dataset[np.sort(train_idx)]
    test = dataset[np.sort(test_idx)]
    train.name = dataset.name + ":train"
    test.name = dataset.name + ":test"
    return train, test


def stratified_kfold(labels, n_folds=5, seed=0):
    """Yield ``(train_idx, valid_idx)`` pairs with per-class balance.

    ``labels`` must be an integer array; each class's indices are shuffled
    and dealt round-robin into folds.
    """
    labels = np.asarray(labels)
    if len(labels) < n_folds:
        raise ValueError("need at least n_folds=%d samples" % n_folds)
    rng = np.random.default_rng(seed)
    folds = [[] for _ in range(n_folds)]
    for value in np.unique(labels):
        members = np.flatnonzero(labels == value)
        rng.shuffle(members)
        for position, index in enumerate(members):
            folds[position % n_folds].append(index)
    folds = [np.sort(np.array(fold, dtype=int)) for fold in folds]
    all_idx = np.arange(len(labels))
    for fold in folds:
        valid_mask = np.zeros(len(labels), dtype=bool)
        valid_mask[fold] = True
        yield all_idx[~valid_mask], fold


def subsample_labels(dataset, n_labeled, seed=0):
    """Keep labels on a random subset of entities, hide the rest.

    Used by the semi-supervised experiments (Figure 4): the sequences stay
    available for self-supervised pre-training, but only ``n_labeled`` keep
    their targets.
    """
    rng = np.random.default_rng(seed)
    labeled_idx = [i for i, seq in enumerate(dataset) if seq.is_labeled]
    if n_labeled > len(labeled_idx):
        raise ValueError(
            "requested %d labels but only %d available" % (n_labeled, len(labeled_idx))
        )
    keep = set(rng.choice(labeled_idx, size=n_labeled, replace=False).tolist())
    sequences = []
    for i, seq in enumerate(dataset):
        if seq.is_labeled and i not in keep:
            hidden = type(seq)(seq.seq_id, seq.fields, label=None)
            sequences.append(hidden)
        else:
            sequences.append(seq)
    return SequenceDataset(sequences, dataset.schema, dataset.name + ":subsampled")
