"""Length-bucketed batch planning.

Padded batches waste work on every step past a sequence's true length: a
batch mixing a 10-event and a 200-event sequence runs 190 frozen steps for
the short one.  The planner orders sequences so that batch-mates have
similar lengths, eliminating most padded steps, while a *shuffle window*
keeps enough randomness for training:

1. shuffle all indices (when training);
2. cut the shuffled order into windows of ``window_batches * batch_size``;
3. sort each window by length, longest first;
4. cut the concatenated windows into consecutive batches.

``window_batches=None`` sorts globally (one window) — the right plan for
inference, where batch composition is free to be anything because
eval-mode encoders process sequences independently.
"""

from __future__ import annotations

import numpy as np

from .batches import collate

__all__ = [
    "plan_batches",
    "bucketed_order",
    "iterate_bucketed_batches",
    "padded_step_fraction",
]


def bucketed_order(lengths, batch_size, rng=None, shuffle=True,
                   window_batches=8):
    """Index order with similar-length sequences adjacent.

    Returns a permutation of ``arange(len(lengths))``; consecutive slices
    of ``batch_size`` form the planned batches.
    """
    lengths = np.asarray(lengths)
    order = np.arange(len(lengths))
    if shuffle:
        rng = rng or np.random.default_rng()
        rng.shuffle(order)
    if window_batches is not None and window_batches < 1:
        raise ValueError("window_batches must be >= 1 or None")
    window = (max(len(order), 1) if window_batches is None
              else int(window_batches) * int(batch_size))
    pieces = []
    for start in range(0, len(order), window):
        chunk = order[start:start + window]
        # Stable sort on negated lengths: longest first, ties keep the
        # shuffled order.
        pieces.append(chunk[np.argsort(-lengths[chunk], kind="stable")])
    return np.concatenate(pieces) if pieces else order


def plan_batches(lengths, batch_size, rng=None, shuffle=False,
                 window_batches=None, drop_last=False):
    """Plan length-bucketed batches; returns a list of index arrays.

    Every input index appears in exactly one batch (unless ``drop_last``
    trims a final short batch).
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    order = bucketed_order(lengths, batch_size, rng=rng, shuffle=shuffle,
                           window_batches=window_batches)
    batches = [order[start:start + batch_size]
               for start in range(0, len(order), batch_size)]
    if drop_last and batches and len(batches[-1]) < batch_size:
        batches.pop()
    return batches


def iterate_bucketed_batches(sequences, schema, batch_size, rng=None,
                             shuffle=True, window_batches=8,
                             drop_last=False):
    """Yield collated :class:`~repro.data.PaddedBatch` objects, bucketed.

    Drop-in alternative to :func:`repro.data.iterate_batches` that pads
    each batch only to its own (near-uniform) max length.
    """
    lengths = [len(seq) for seq in sequences]
    for chunk in plan_batches(lengths, batch_size, rng=rng, shuffle=shuffle,
                              window_batches=window_batches,
                              drop_last=drop_last):
        yield collate([sequences[i] for i in chunk], schema)


def padded_step_fraction(lengths, batches):
    """Fraction of padded (wasted) steps under a batch plan — plan telemetry."""
    lengths = np.asarray(lengths)
    total = 0
    real = 0
    for chunk in batches:
        chunk_lengths = lengths[chunk]
        if len(chunk_lengths) == 0:
            continue  # an empty chunk pads nothing
        total += int(chunk_lengths.max()) * len(chunk)
        real += int(chunk_lengths.sum())
    return 0.0 if total == 0 else 1.0 - real / total
