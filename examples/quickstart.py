"""Quickstart: train CoLES on synthetic card transactions and use the
embeddings for churn prediction.

Walks the full Figure-1 pipeline of the paper:

  Phase 1  — self-supervised contrastive pre-training on ALL sequences
             (labels never touched);
  Phase 2a — the frozen embeddings become features for a gradient-boosting
             classifier on the labeled subset.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import CoLES
from repro.data import train_test_split
from repro.data.synthetic import make_churn_dataset
from repro.eval import auroc
from repro.gbm import GBMConfig, GradientBoostingClassifier


def main():
    # ------------------------------------------------------------------
    # 1. Data: 300 synthetic bank clients, half labeled with churn flags.
    # ------------------------------------------------------------------
    dataset = make_churn_dataset(num_clients=300, labeled_fraction=0.5, seed=7)
    print(dataset.summary())
    train, test = train_test_split(dataset, test_fraction=0.2, seed=0)
    print("train:", train.summary())
    print("test :", test.summary())

    # ------------------------------------------------------------------
    # 2. Phase 1 — self-supervised CoLES pre-training.
    #    Random slices (Algorithm 1) build positive pairs; the contrastive
    #    loss with hard negative mining shapes the embedding space.
    #    Recurrent encoders train through the graph-free fused BPTT
    #    runtime by default — same gradients as the autograd engine
    #    (< 1e-8), several times faster (see docs/architecture.md and
    #    BENCH_training.json); pass engine="tensor" to pin autograd.
    # ------------------------------------------------------------------
    model = CoLES(
        dataset.schema,
        hidden_size=32,          # embedding dimensionality d
        encoder_type="gru",      # the paper's default phi_seq
        loss="contrastive",      # Table 4 winner
        sampler="hard",          # Table 5 winner
        strategy="random_slices",  # Table 2 winner (Algorithm 1)
        min_length=5,
        max_length=80,
        num_samples=5,           # K sub-sequences per entity (Table 1)
        seed=0,
    )
    model.fit(train, num_epochs=6, batch_size=16, learning_rate=0.01,
              verbose=True)

    # ------------------------------------------------------------------
    # 3. Phase 2a — embeddings as features for a downstream GBM.
    # ------------------------------------------------------------------
    train_labeled = train.labeled()
    embeddings_train = model.embed(train_labeled)   # (N, 32) unit vectors
    embeddings_test = model.embed(test)
    print("embedding matrix:", embeddings_train.shape)

    classifier = GradientBoostingClassifier(GBMConfig(num_rounds=60))
    classifier.fit(embeddings_train, train_labeled.label_array())
    scores = classifier.predict_proba(embeddings_test)[:, 1]
    print("churn AUROC on held-out clients: %.3f"
          % auroc(test.label_array(), scores))

    # ------------------------------------------------------------------
    # 4. The embeddings are reusable artifacts: save, reload, re-embed.
    # ------------------------------------------------------------------
    model.save("/tmp/coles_quickstart.npz")
    reloaded = CoLES(dataset.schema, hidden_size=32, seed=0)
    reloaded.load("/tmp/coles_quickstart.npz")
    np.testing.assert_allclose(reloaded.embed(test), embeddings_test)
    print("saved + reloaded encoder reproduces the embeddings exactly")

    # ------------------------------------------------------------------
    # 4b. Phase 2b — fine-tuning: attach a softmax head and train
    #     jointly on the labels (updates the encoder in place).  Since
    #     PR 5 this also defaults to engine="auto": recurrent encoders
    #     fine-tune on the fused graph-free path (hand-derived
    #     cross-entropy + head backward) and predict through the fused
    #     runtime; pass engine="tensor" to pin autograd.
    #     encoder_learning_rate trains the pre-trained encoder more
    #     gently than the fresh head.
    # ------------------------------------------------------------------
    classifier_ft = model.fine_tune(train, num_epochs=3,
                                    learning_rate=0.01,
                                    encoder_learning_rate=0.002)
    ft_scores = classifier_ft.predict_proba(test)[:, 1]
    print("fine-tuned churn AUROC on held-out clients: %.3f"
          % auroc(test.label_array(), ft_scores))

    # ------------------------------------------------------------------
    # 5. Serving note: `model.embed` already runs through the fused
    #    graph-free runtime with a length-bucketed batch plan (see
    #    repro.runtime and examples/deployment_pipeline.py for the full
    #    bulk + incremental ETL story).
    # ------------------------------------------------------------------
    runtime = model.encoder.fused_runtime()
    print("serving runtime ready: %s encoder, %d-dim embeddings"
          % (model.encoder.cell, runtime.output_dim))


if __name__ == "__main__":
    main()
