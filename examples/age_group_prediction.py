"""Age-group prediction: CoLES embeddings vs hand-crafted features vs both.

Reproduces the paper's central comparison (Table 6) on the synthetic
age-group world: the self-supervised embedding is competitive with
domain-expert feature engineering, and the combination is strongest.
Also demonstrates the semi-supervised advantage (Figure 4's premise):
CoLES pre-trains on ALL clients while labels exist only for a subset.

Run:  python examples/age_group_prediction.py
"""

import numpy as np

from repro import CoLES
from repro.baselines import handcrafted_features
from repro.data import train_test_split
from repro.data.synthetic import make_age_dataset
from repro.eval import accuracy
from repro.gbm import GBMConfig, GradientBoostingClassifier


def gbm_accuracy(train_features, train_labels, test_features, test_labels):
    model = GradientBoostingClassifier(GBMConfig(num_rounds=60, max_depth=3))
    model.fit(np.asarray(train_features, dtype=float), train_labels)
    return accuracy(test_labels, model.predict(np.asarray(test_features,
                                                          dtype=float)))


def main():
    # 40% of clients are unlabeled — useless to supervised pipelines,
    # free training signal for self-supervision.
    dataset = make_age_dataset(num_clients=400, labeled_fraction=0.6, seed=3)
    print(dataset.summary())
    train, test = train_test_split(dataset, test_fraction=0.15, seed=0)
    train_labeled = train.labeled()
    train_labels = train_labeled.label_array()
    test_labels = test.label_array()

    # ------------------------------------------------------------------
    # Scenario 1: the domain-expert baseline (Section 4.1.2).
    # ------------------------------------------------------------------
    designed_train = handcrafted_features(train_labeled)
    designed_test = handcrafted_features(test)
    print("\nhand-crafted features: %d columns, e.g. %s"
          % (designed_train.shape[1], designed_train.names[:4]))
    acc_designed = gbm_accuracy(designed_train.values, train_labels,
                                designed_test.values, test_labels)

    # ------------------------------------------------------------------
    # Scenario 2: CoLES embeddings (pre-trained on ALL train sequences,
    # including the unlabeled 40%).
    # ------------------------------------------------------------------
    model = CoLES(dataset.schema, hidden_size=32, min_length=5,
                  max_length=100, seed=0)
    model.fit(train, num_epochs=5, batch_size=16, learning_rate=0.01)
    emb_train = model.embed(train_labeled)
    emb_test = model.embed(test)
    acc_coles = gbm_accuracy(emb_train, train_labels, emb_test, test_labels)

    # ------------------------------------------------------------------
    # Scenario 3: hybrid — concatenate both feature sets (the deployment
    # pattern of Tables 10-11).
    # ------------------------------------------------------------------
    hybrid_train = designed_train.concat(emb_train)
    hybrid_test = designed_test.concat(emb_test)
    acc_hybrid = gbm_accuracy(hybrid_train.values, train_labels,
                              hybrid_test.values, test_labels)

    print("\n4-class age-group accuracy on held-out clients (chance = 0.25)")
    print("  hand-crafted features : %.3f" % acc_designed)
    print("  CoLES embeddings      : %.3f" % acc_coles)
    print("  hybrid (both)         : %.3f" % acc_hybrid)


if __name__ == "__main__":
    main()
