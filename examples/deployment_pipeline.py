"""Production deployment pipeline: the ETL pattern of Section 4.3.1.

Shows the serving properties the paper engineered for scale (90M+ cards):

1. **Fused bulk embedding** — day-0 embeddings run through the graph-free
   :mod:`repro.runtime` kernels with a length-sorted batch plan instead
   of the training-time autograd machinery.
2. **Incremental inference** — when new transactions arrive, the GRU
   state c_t is advanced from where it stopped instead of re-reading the
   whole history.  We verify the refreshed embedding equals a full
   recompute bit-for-bit.
3. **Save/load** — the :class:`~repro.runtime.EmbeddingStore` persists
   per-entity states between ETL runs as a portable state bundle, so a
   restarted worker resumes streaming without recomputation.
4. **uint4 quantization** — embeddings compress 8x (a 256-dim float32
   vector: 1KB -> 128 bytes) with bounded reconstruction error.
5. **Out-of-core state** — the same bundle loads into a
   :class:`~repro.runtime.MemmapStateBackend` with the ``int8`` state
   codec: states page through disk-backed shards at a fraction of the
   in-RAM footprint, within a documented drift bound.
6. **Online serving** — an :class:`~repro.serving.EmbeddingService`
   (sharded state, micro-batched ingestion, LRU cache) replays an
   interleaved event log and serves query traffic that always matches a
   full recompute.

Run:  python examples/deployment_pipeline.py
"""

import os
import tempfile
import time

import numpy as np

from repro import CoLES
from repro.core import (
    embed_dataset,
    pack_uint4,
    quantize_embeddings,
    unpack_uint4,
)
from repro.core.inference import serve
from repro.data.sequences import SequenceDataset
from repro.data.synthetic import make_retail_customers_dataset
from repro.runtime import EmbeddingStore, MemmapStateBackend
from repro.serving import build_event_log, replay_event_log


def main():
    clients = make_retail_customers_dataset(num_clients=120, seed=11)
    print(clients.summary())

    model = CoLES(clients.schema, hidden_size=32, min_length=5,
                  max_length=120, seed=0)
    model.fit(clients, num_epochs=3, batch_size=16, learning_rate=0.01)
    encoder = model.encoder

    # ------------------------------------------------------------------
    # Day 0: bulk-embed every client's history through the fused runtime.
    # The store records each client's final GRU state alongside the
    # embedding, ready for incremental refresh.
    # ------------------------------------------------------------------
    split = {seq.seq_id: int(0.8 * len(seq)) for seq in clients}
    history = SequenceDataset(
        [seq.slice(0, split[seq.seq_id]) for seq in clients],
        clients.schema, name="day0",
    )
    store = EmbeddingStore(encoder)
    started = time.perf_counter()
    day0 = store.bulk_load(history)
    print("day-0 bulk embed of %d clients in %.1f ms (fused runtime, "
          "length-bucketed plan)"
          % (len(clients), (time.perf_counter() - started) * 1000))
    print("day-0 embeddings:", day0.shape)

    # ------------------------------------------------------------------
    # Overnight: persist the store; a fresh worker picks it up.  save()
    # writes a manifest-driven state bundle (mmap-loadable .npy blocks)
    # that any backend/codec combination can load.
    # ------------------------------------------------------------------
    bundle_dir = os.path.join(tempfile.mkdtemp(), "store_state")
    store.save(bundle_dir)
    worker = EmbeddingStore(encoder).load(bundle_dir)
    print("save/load: %d entities carried over" % len(worker))

    # ------------------------------------------------------------------
    # Day 1: each client produced a handful of new transactions.  The
    # restored store folds them into the saved GRU states.
    # ------------------------------------------------------------------
    started = time.perf_counter()
    for seq in clients:  # stream in the "new" tail events
        worker.update(seq.seq_id, seq.slice(split[seq.seq_id], len(seq)),
                      clients.schema)
    elapsed = time.perf_counter() - started

    refreshed = np.stack([worker.embedding(seq.seq_id) for seq in clients])
    full = embed_dataset(encoder, clients)  # full recompute, fused path
    np.testing.assert_allclose(refreshed, full, rtol=1e-8)
    new_events = sum(len(seq) - split[seq.seq_id] for seq in clients)
    print("incremental refresh of %d clients (%d new events) in %.1f ms — "
          "embeddings match full recompute exactly"
          % (len(clients), new_events, elapsed * 1000))

    # ------------------------------------------------------------------
    # Storage: quantize to 16 levels and pack two codes per byte.
    # ------------------------------------------------------------------
    quantized = quantize_embeddings(full, levels=16)
    packed = pack_uint4(quantized.codes)
    raw_bytes = full.shape[0] * full.shape[1] * 4
    print("quantization: %d bytes -> %d bytes (%.1fx)"
          % (raw_bytes, quantized.packed_bytes(),
             raw_bytes / quantized.packed_bytes()))

    recovered_codes = unpack_uint4(packed, width=full.shape[1])
    np.testing.assert_array_equal(recovered_codes, quantized.codes)
    error = np.abs(quantized.dequantize() - full).max()
    print("max reconstruction error per coordinate: %.4f" % error)

    # ------------------------------------------------------------------
    # Out-of-core state: the same bundle loads into a memory-mapped
    # backend with the int8 state codec — states page through small
    # disk-backed shards instead of living in RAM, and the day-1 stream
    # folds in within the codec's drift bound.
    # ------------------------------------------------------------------
    ooc = EmbeddingStore(
        encoder, codec="int8",
        # Tiny shards + a 2-shard LRU so even 120 clients page through
        # disk (production would keep the 1024-row default).
        backend=MemmapStateBackend(
            os.path.join(tempfile.mkdtemp(), "ooc_state"),
            shard_capacity=16, cache_shards=2))
    ooc.load(bundle_dir)
    for seq in clients:
        ooc.update(seq.seq_id, seq.slice(split[seq.seq_id], len(seq)),
                   clients.schema)
    drift = np.abs(np.stack([ooc.embedding(seq.seq_id)
                             for seq in clients]) - full).max()
    print("out-of-core store (memmap shards + int8 codec): %.0f bytes "
          "per entity at rest vs %.0f for the in-RAM dict backend "
          "(%.1fx smaller), %d shard evictions, max drift %.2e"
          % (ooc.bytes_per_entity(), store.bytes_per_entity(),
             store.bytes_per_entity() / ooc.bytes_per_entity(),
             ooc.backend.stats()["evictions"], drift))

    # ------------------------------------------------------------------
    # Online serving: stand the embedding service up on day-0 history,
    # replay the day-1 stream as interleaved per-client arrivals with
    # read-your-writes query traffic, and verify the served embeddings.
    # ------------------------------------------------------------------
    service = serve(encoder, dataset=history, num_shards=4,
                    flush_events=128, cache_capacity=256)
    tails = SequenceDataset(
        [seq.slice(split[seq.seq_id], len(seq)) for seq in clients],
        clients.schema, name="day1-stream",
    )
    log = build_event_log(tails, chunk_events=4, seed=7)
    started = time.perf_counter()
    replay_event_log(service, log, query_every=5)
    elapsed = time.perf_counter() - started
    ids = [seq.seq_id for seq in clients]
    served = service.query(ids)
    service.query(ids)  # repeat read: served from the hot cache
    np.testing.assert_allclose(served, full, atol=1e-10)
    stats = service.stats()
    print("online service: %d chunks / %d events replayed in %.1f ms "
          "(%d micro-batch flushes) — serving matches full recompute"
          % (stats["chunks_ingested"], stats["events_ingested"],
             elapsed * 1000, stats["flushes"]))
    print("  shard sizes: %s" % stats["shard_sizes"])
    print("  cache: %.0f%% hit rate, %d invalidations"
          % (100 * stats["cache"]["hit_rate"],
             stats["cache"]["invalidations"]))

    service_dir = os.path.join(tempfile.mkdtemp(), "service-shards")
    service.save(service_dir)
    standby = serve(encoder, schema=clients.schema, num_shards=4)
    standby.load(service_dir)
    np.testing.assert_array_equal(standby.query(ids), service.query(ids))
    print("  sharded save -> standby worker: %d entities across %d "
          "shard bundles" % (len(standby.store), standby.store.num_shards))


if __name__ == "__main__":
    main()
