"""Production deployment pipeline: the ETL pattern of Section 4.3.1.

Shows the two properties the paper engineered for scale (90M+ cards):

1. **Incremental inference** — when new transactions arrive, the GRU
   state c_t is advanced from where it stopped instead of re-reading the
   whole history.  We verify the refreshed embedding equals a full
   recompute bit-for-bit.
2. **uint4 quantization** — embeddings compress 8x (a 256-dim float32
   vector: 1KB -> 128 bytes) with bounded reconstruction error.

Run:  python examples/deployment_pipeline.py
"""

import time

import numpy as np

from repro import CoLES
from repro.core import (
    IncrementalEmbedder,
    embed_dataset,
    pack_uint4,
    quantize_embeddings,
    unpack_uint4,
)
from repro.data.synthetic import make_retail_customers_dataset


def main():
    clients = make_retail_customers_dataset(num_clients=120, seed=11)
    print(clients.summary())

    model = CoLES(clients.schema, hidden_size=32, min_length=5,
                  max_length=120, seed=0)
    model.fit(clients, num_epochs=3, batch_size=16, learning_rate=0.01)
    encoder = model.encoder

    # ------------------------------------------------------------------
    # Day 0: batch-embed the full history of every client.
    # ------------------------------------------------------------------
    day0 = embed_dataset(encoder, clients)
    print("day-0 embeddings:", day0.shape)

    # ------------------------------------------------------------------
    # Day 1: each client produced a handful of new transactions.  The
    # incremental embedder folds them into the stored GRU states.
    # ------------------------------------------------------------------
    embedder = IncrementalEmbedder(encoder)
    split = {seq.seq_id: int(0.8 * len(seq)) for seq in clients}
    for seq in clients:  # warm the state store with the old history
        embedder.update(seq.seq_id, seq.slice(0, split[seq.seq_id]),
                        clients.schema)

    started = time.perf_counter()
    for seq in clients:  # stream in the "new" tail events
        embedder.update(seq.seq_id, seq.slice(split[seq.seq_id], len(seq)),
                        clients.schema)
    elapsed = time.perf_counter() - started

    refreshed = np.stack([embedder.embedding(seq.seq_id) for seq in clients])
    np.testing.assert_allclose(refreshed, day0, rtol=1e-8)
    new_events = sum(len(seq) - split[seq.seq_id] for seq in clients)
    print("incremental refresh of %d clients (%d new events) in %.1f ms — "
          "embeddings match full recompute exactly"
          % (len(clients), new_events, elapsed * 1000))

    # ------------------------------------------------------------------
    # Storage: quantize to 16 levels and pack two codes per byte.
    # ------------------------------------------------------------------
    quantized = quantize_embeddings(day0, levels=16)
    packed = pack_uint4(quantized.codes)
    raw_bytes = day0.shape[0] * day0.shape[1] * 4
    print("quantization: %d bytes -> %d bytes (%.1fx)"
          % (raw_bytes, quantized.packed_bytes(),
             raw_bytes / quantized.packed_bytes()))

    recovered_codes = unpack_uint4(packed, width=day0.shape[1])
    np.testing.assert_array_equal(recovered_codes, quantized.codes)
    error = np.abs(quantized.dequantize() - day0).max()
    print("max reconstruction error per coordinate: %.4f" % error)


if __name__ == "__main__":
    main()
