"""Legal-entity embeddings: the commercial use case of Section 4.3.

One self-supervised encoder is trained once on companies' money-transfer
streams; its embeddings then serve FIVE different downstream tasks
(Table 10) without touching the raw events again — the deployment pattern
the paper credits with significant financial gains:

- insurance / credit lead generation,
- credit scoring,
- fraudulent-transfer monitoring,
- holding-structure restoration (a company-pair task).

The script also shows why embeddings matter here: the natural grouping
key for hand-crafted aggregates (the counterparty id) is too high-
cardinality to aggregate on, so the baseline below only groups by
currency and transfer type, losing the latent counterparty structure that
CoLES learns automatically.

Run:  python examples/legal_entity_embeddings.py
"""

import numpy as np

from repro import CoLES
from repro.baselines import handcrafted_features
from repro.data.synthetic import (
    holding_pairs,
    make_legal_entities_dataset,
    with_label_channel,
)
from repro.eval import cross_val_features
from repro.gbm import GBMConfig

TASKS = ("insurance_lead", "credit_lead", "credit_scoring", "fraud")
GBM = GBMConfig(num_rounds=50, max_depth=3)


def pair_features(matrix, pairs):
    """Order-invariant features of a company pair."""
    left, right = matrix[pairs[:, 0]], matrix[pairs[:, 1]]
    return np.concatenate([np.abs(left - right), left * right], axis=1)


def main():
    companies = make_legal_entities_dataset(num_companies=300, seed=5)
    print(companies.summary())

    # One encoder, trained once, self-supervised.
    model = CoLES(companies.schema, hidden_size=32, min_length=5,
                  max_length=100, seed=0)
    model.fit(companies, num_epochs=4, batch_size=16, learning_rate=0.01)
    embeddings = model.embed(companies)
    print("company embeddings:", embeddings.shape)

    # Hand-crafted baseline: groups only by low-cardinality fields.
    baseline = handcrafted_features(
        companies, group_fields=("currency", "transfer_type")
    )

    print("\nAUROC by scenario (3-fold CV)")
    print("%-22s %9s %9s %9s" % ("task", "baseline", "coles", "hybrid"))
    for task in TASKS:
        labels = with_label_channel(companies, task).label_array()
        hybrid = np.concatenate([baseline.values, embeddings], axis=1)
        row = []
        for features in (baseline.values, embeddings, hybrid):
            row.append(cross_val_features(features, labels, n_folds=3,
                                          gbm_config=GBM).mean())
        print("%-22s %9.3f %9.3f %9.3f" % (task, *row))

    # Holding-structure restoration: are two companies in one holding?
    pairs, labels = holding_pairs(companies, num_pairs=300, seed=1)
    hybrid_pairs = np.concatenate(
        [pair_features(baseline.values, pairs), pair_features(embeddings, pairs)],
        axis=1,
    )
    row = []
    for features in (pair_features(baseline.values, pairs),
                     pair_features(embeddings, pairs), hybrid_pairs):
        row.append(cross_val_features(features, labels, n_folds=3,
                                      gbm_config=GBM).mean())
    print("%-22s %9.3f %9.3f %9.3f" % ("holding_structure", *row))


if __name__ == "__main__":
    main()
