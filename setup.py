"""Setuptools entry point; all metadata lives in pyproject.toml.

Kept so legacy tooling (and ``pip install -e .`` on older pips without
PEP 660 support) still works with the ``src/`` layout.
"""

from setuptools import setup

setup()
