"""Setuptools entry point (kept so editable installs work without wheel)."""

from setuptools import setup

setup()
